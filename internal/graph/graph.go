// Package graph provides the undirected-graph substrate used by every other
// component: a compact CSR (compressed sparse row) representation with sorted
// neighbor lists, builders, directed graphs with reciprocal-edge conversion
// (the paper's §V-A.2 dataset preparation), traversals, connectivity,
// effective diameter, and edge-list serialization.
//
// Node identifiers are dense int32 values in [0, N). Sorted neighbor slices
// make membership tests O(log d) and common-neighborhood intersection — the
// heart of the paper's Theorem 3 removal criterion — O(d_u + d_v).
package graph

import (
	"fmt"
	"slices"
)

// NodeID identifies a node. IDs are dense: a graph with N nodes uses IDs
// 0..N-1.
type NodeID = int32

// Edge is an undirected edge. By convention U <= V in normalized form.
type Edge struct {
	U, V NodeID
}

// Canon returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// EdgeKey packs a canonical edge into a single comparable 64-bit key, used by
// the overlay's delta sets.
type EdgeKey uint64

// Key returns the canonical packed key of e.
func (e Edge) Key() EdgeKey {
	c := e.Canon()
	return EdgeKey(uint64(uint32(c.U))<<32 | uint64(uint32(c.V)))
}

// KeyOf returns the packed canonical key for the edge (u, v).
func KeyOf(u, v NodeID) EdgeKey { return Edge{u, v}.Key() }

// Nodes returns the endpoints of a key in canonical (U <= V) order.
func (k EdgeKey) Nodes() (NodeID, NodeID) {
	return NodeID(uint32(k >> 32)), NodeID(uint32(k))
}

// Graph is an immutable simple undirected graph in CSR (compressed sparse
// row) form: node u's neighbors live in neigh[offsets[u]:offsets[u+1]],
// sorted ascending, free of duplicates and self-loops. Two flat arrays hold
// the whole topology — 4 bytes per directed edge entry plus 4 bytes per node
// — so million-node graphs fit in a fraction of the memory of per-node
// slices, and a neighbor read is a zero-allocation slice view.
//
// Build one with a Builder or a generator from internal/gen.
type Graph struct {
	// offsets has NumNodes+1 entries; offsets[0] == 0 and offsets[u+1] -
	// offsets[u] is u's degree. uint32 bounds the directed-entry count (twice
	// the edges) at ~2.1 billion, far above the paper's scale.
	offsets []uint32
	// neigh is the concatenation of all sorted neighbor lists.
	neigh []NodeID
	edges int
}

// NewFromAdjacency builds a graph from pre-built adjacency lists. The caller
// warrants that the lists are symmetric; each list is sorted and deduplicated
// defensively and self-loops are dropped. The input is not retained. Mostly
// useful in tests; prefer Builder elsewhere.
func NewFromAdjacency(adj [][]NodeID) *Graph {
	offsets := make([]uint32, len(adj)+1)
	for u, lst := range adj {
		offsets[u+1] = offsets[u] + uint32(len(lst))
	}
	neigh := make([]NodeID, offsets[len(adj)])
	for u, lst := range adj {
		copy(neigh[offsets[u]:], lst)
	}
	return finishCSR(offsets, neigh)
}

// finishCSR sorts each row, removes duplicates and self-loops compacting the
// flat array in place, and returns the finished graph. offsets and neigh are
// taken over (and shrunk) by the call.
func finishCSR(offsets []uint32, neigh []NodeID) *Graph {
	n := len(offsets) - 1
	w := uint32(0)
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		offsets[u] = w // rows only shrink, so w never overtakes lo
		row := neigh[lo:hi]
		slices.Sort(row)
		for i, v := range row {
			if v == NodeID(u) {
				continue // self-loop
			}
			if i > 0 && w > offsets[u] && neigh[w-1] == v {
				continue // duplicate
			}
			neigh[w] = v
			w++
		}
	}
	offsets[n] = w
	return &Graph{offsets: offsets, neigh: neigh[:w:w], edges: int(w) / 2}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return int(g.offsets[u+1] - g.offsets[u]) }

// Neighbors returns u's sorted neighbor list as a read-only view into the
// graph's CSR storage: zero allocations, and the view's capacity is clipped
// to its length, so an append by the caller reallocates instead of
// overwriting the next node's row. The elements themselves must not be
// modified.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	lo, hi := g.offsets[u], g.offsets[u+1]
	//rewirelint:allow aliasing zero-alloc CSR view is the documented contract; capacity clipped so appends reallocate
	return g.neigh[lo:hi:hi]
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	n := g.NumNodes()
	if int(u) >= n || int(v) >= n || u < 0 || v < 0 {
		return false
	}
	lst := g.Neighbors(u)
	if other := g.Neighbors(v); len(other) < len(lst) {
		lst, v = other, u
	}
	return ContainsSorted(lst, v)
}

// Edges returns all edges in canonical order (U <= V), sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				out = append(out, Edge{NodeID(u), v})
			}
		}
	}
	return out
}

// CommonNeighbors returns the sorted intersection of the neighbor lists of u
// and v: |N(u) ∩ N(v)| drives the paper's removal criterion. The result is
// freshly allocated.
func (g *Graph) CommonNeighbors(u, v NodeID) []NodeID {
	return IntersectSorted(g.Neighbors(u), g.Neighbors(v))
}

// CountCommonNeighbors returns |N(u) ∩ N(v)| without allocating.
func (g *Graph) CountCommonNeighbors(u, v NodeID) int {
	return CountIntersectSorted(g.Neighbors(u), g.Neighbors(v))
}

// IntersectSorted intersects two ascending NodeID slices.
func IntersectSorted(a, b []NodeID) []NodeID {
	return IntersectSortedInto(nil, a, b)
}

// IntersectSortedInto is IntersectSorted appending into dst[:0], so a caller
// on a hot path can reuse one scratch buffer instead of allocating per call
// (the walk inner loop's zero-allocation steady state depends on this).
func IntersectSortedInto(dst, a, b []NodeID) []NodeID {
	out := dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// CountIntersectSorted counts the intersection size of two ascending slices.
func CountIntersectSorted(a, b []NodeID) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// ContainsSorted reports whether x occurs in the ascending slice lst.
func ContainsSorted(lst []NodeID, x NodeID) bool {
	_, found := slices.BinarySearch(lst, x)
	return found
}

// DegreeSum returns the sum of all degrees (2 * NumEdges for consistency
// checking).
func (g *Graph) DegreeSum() int { return len(g.neigh) }

// MinDegree returns the smallest degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	m := g.Degree(0)
	for u := NodeID(1); int(u) < n; u++ {
		if d := g.Degree(u); d < m {
			m = d
		}
	}
	return m
}

// MaxDegree returns the largest degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.Degree(NodeID(u)); d > m {
			m = d
		}
	}
	return m
}

// AverageDegree returns mean degree, the paper's default aggregate query for
// topological datasets.
func (g *Graph) AverageDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(g.DegreeSum()) / float64(g.NumNodes())
}

// DegreeHistogram returns counts[d] = number of nodes of degree d.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for u := 0; u < g.NumNodes(); u++ {
		counts[g.Degree(NodeID(u))]++
	}
	return counts
}

// FootprintBytes returns the heap footprint of the CSR arrays — what the
// memory smoke test budgets for a million-node graph.
func (g *Graph) FootprintBytes() int {
	return 4*len(g.offsets) + 4*len(g.neigh)
}

// Clone returns an independent deep copy of the CSR arrays. The Graph API is
// immutable, so cloning only matters for callers that reach into a graph's
// storage with unsafe tricks — and for tests proving they cannot.
func (g *Graph) Clone() *Graph {
	return &Graph{
		offsets: slices.Clone(g.offsets),
		neigh:   slices.Clone(g.neigh),
		edges:   g.edges,
	}
}

// Validate checks structural invariants (offset monotonicity, sortedness,
// symmetry, no self loops, no duplicates, edge-count consistency).
// Generators call it in tests.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.offsets) > 0 && g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if len(g.offsets) > 0 && int(g.offsets[n]) != len(g.neigh) {
		return fmt.Errorf("graph: offsets[%d] = %d does not cover %d entries", n, g.offsets[n], len(g.neigh))
	}
	total := 0
	for u := 0; u < n; u++ {
		if g.offsets[u+1] < g.offsets[u] {
			return fmt.Errorf("graph: offsets decrease at node %d", u)
		}
		lst := g.Neighbors(NodeID(u))
		for i, v := range lst {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, v)
			}
			if v == NodeID(u) {
				return fmt.Errorf("graph: self-loop at node %d", u)
			}
			if i > 0 && lst[i-1] >= v {
				return fmt.Errorf("graph: adjacency of node %d not strictly ascending at index %d", u, i)
			}
			if !ContainsSorted(g.Neighbors(v), NodeID(u)) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", u, v)
			}
		}
		total += len(lst)
	}
	if total != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with degree sum %d", g.edges, total)
	}
	return nil
}
