package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestDigraphBasics(t *testing.T) {
	b := NewDigraphBuilder(4)
	b.AddArc(0, 1)
	b.AddArc(1, 0)
	b.AddArc(1, 2)
	b.AddArc(2, 2) // self loop dropped
	b.AddArc(0, 1) // duplicate dropped
	d := b.Build()
	if d.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", d.NumNodes())
	}
	if d.NumArcs() != 3 {
		t.Fatalf("NumArcs = %d, want 3", d.NumArcs())
	}
	if !d.HasArc(0, 1) || !d.HasArc(1, 0) || !d.HasArc(1, 2) {
		t.Error("missing expected arcs")
	}
	if d.HasArc(2, 1) {
		t.Error("unexpected arc 2->1")
	}
}

func TestReciprocalKeepsMutualEdgesOnly(t *testing.T) {
	b := NewDigraphBuilder(4)
	b.AddArc(0, 1)
	b.AddArc(1, 0) // mutual -> kept
	b.AddArc(1, 2) // one-way -> dropped
	b.AddArc(2, 3)
	b.AddArc(3, 2) // mutual -> kept
	g := b.Build().Reciprocal()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) || g.HasEdge(1, 2) {
		t.Errorf("edges = %v", g.Edges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnderlyingKeepsAllArcs(t *testing.T) {
	b := NewDigraphBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	g := b.Build().Underlying()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestReciprocalWalkGuarantee(t *testing.T) {
	// Paper §V-A.2: any edge of the reciprocal graph can be traversed in the
	// original digraph in both directions.
	b := NewDigraphBuilder(5)
	arcs := [][2]NodeID{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {4, 2}, {2, 4}}
	for _, a := range arcs {
		b.AddArc(a[0], a[1])
	}
	d := b.Build()
	g := d.Reciprocal()
	for _, e := range g.Edges() {
		if !d.HasArc(e.U, e.V) || !d.HasArc(e.V, e.U) {
			t.Errorf("edge %v not mutual in digraph", e)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {3, 4}, {0, 4}})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d nodes %d edges, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !got.HasEdge(e.U, e.V) {
			t.Errorf("missing edge %v after round trip", e)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# header\n\n0 1\n1\t2\n# trailing\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListNodeHint(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10 (hint)", g.NumNodes())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",                      // one field
		"a b\n",                    // non-numeric
		"0 x\n",                    // second field bad
		"-1 2\n",                   // negative
		"0 99999999999999999999\n", // overflow
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
