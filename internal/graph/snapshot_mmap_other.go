//go:build !linux

package graph

import "os"

// openSnapshotMmap has no portable implementation: OpenSnapshot falls back to
// the io.ReaderAt path on non-linux platforms.
func openSnapshotMmap(*os.File, int64) (*Snapshot, error) {
	return nil, errMmapUnsupported
}
