package graph

import "sort"

// Digraph is a simple directed graph. It exists so the reproduction can
// exercise the paper's dataset preparation: "for a real-world directed graph
// (e.g., Epinions), we first convert it to an undirected one by only keeping
// edges that appear in both directions" (§V-A.2).
type Digraph struct {
	out   [][]NodeID
	edges int
}

// DigraphBuilder accumulates directed arcs.
type DigraphBuilder struct {
	n   int
	out [][]NodeID
}

// NewDigraphBuilder returns a builder over n nodes.
func NewDigraphBuilder(n int) *DigraphBuilder {
	return &DigraphBuilder{n: n, out: make([][]NodeID, n)}
}

// AddArc records the directed arc u -> v. Self-loops are dropped.
// Out-of-range endpoints panic: generator bugs should fail loudly (file
// loaders validate IDs before ever reaching a builder).
func (b *DigraphBuilder) AddArc(u, v NodeID) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic("graph: AddArc endpoint out of range")
	}
	if u == v {
		return
	}
	b.out[u] = append(b.out[u], v)
}

// Build finalizes the digraph (sorted, deduplicated out-lists).
func (b *DigraphBuilder) Build() *Digraph {
	total := 0
	for u := range b.out {
		lst := b.out[u]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		w := 0
		for i, v := range lst {
			if i > 0 && w > 0 && lst[w-1] == v {
				continue
			}
			lst[w] = v
			w++
		}
		b.out[u] = lst[:w]
		total += w
	}
	d := &Digraph{out: b.out, edges: total}
	b.out = nil
	return d
}

// NumNodes returns the node count.
func (d *Digraph) NumNodes() int { return len(d.out) }

// NumArcs returns the number of directed arcs.
func (d *Digraph) NumArcs() int { return d.edges }

// OutNeighbors returns u's sorted out-neighbor list as a read-only view
// (shared storage, do not modify) — the zero-alloc contract mirrors
// Graph.Neighbors.
//
//rewirelint:allow aliasing documented read-only view, mirrors Graph.Neighbors zero-alloc contract
func (d *Digraph) OutNeighbors(u NodeID) []NodeID { return d.out[u] }

// HasArc reports whether the arc u -> v exists.
func (d *Digraph) HasArc(u, v NodeID) bool {
	return ContainsSorted(d.out[u], v)
}

// Reciprocal converts the digraph to an undirected graph keeping only edges
// present in both directions, exactly as the paper prepares Epinions. The
// paper notes this guarantees a random walk over the result can also be
// performed over the original directed graph by verifying the inverse edge.
func (d *Digraph) Reciprocal() *Graph {
	b := NewBuilder(len(d.out))
	for u := range d.out {
		for _, v := range d.out[u] {
			if NodeID(u) < v && d.HasArc(v, NodeID(u)) {
				b.AddEdge(NodeID(u), v)
			}
		}
	}
	return b.Build()
}

// Underlying converts the digraph to an undirected graph keeping every arc as
// an undirected edge (the union conversion), for comparison against
// Reciprocal in tests and ablations.
func (d *Digraph) Underlying() *Graph {
	b := NewBuilder(len(d.out))
	for u := range d.out {
		for _, v := range d.out[u] {
			b.AddEdge(NodeID(u), v)
		}
	}
	return b.Build()
}
