package graph

import "sort"

// Builder accumulates undirected edges and produces an immutable Graph.
// Duplicate edges and self-loops are silently dropped, matching how the paper
// treats its datasets as simple graphs.
type Builder struct {
	n   int
	adj [][]NodeID
}

// NewBuilder returns a builder for a graph over n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n, adj: make([][]NodeID, n)}
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the undirected edge (u, v). Self-loops are ignored.
// Out-of-range endpoints panic: generator bugs should fail loudly.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic("graph: AddEdge endpoint out of range")
	}
	if u == v {
		return
	}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
}

// HasEdgeSlow reports whether (u, v) has been added. Linear scan; intended
// for generators that need occasional duplicate checks while building sparse
// graphs.
func (b *Builder) HasEdgeSlow(u, v NodeID) bool {
	a, c := b.adj[u], b.adj[v]
	if len(c) < len(a) {
		a, v = c, u
	}
	for _, x := range a {
		if x == v {
			return true
		}
	}
	return false
}

// Degree returns the current (pre-dedup) degree of u.
func (b *Builder) Degree(u NodeID) int { return len(b.adj[u]) }

// Build finalizes the graph: sorts adjacency, removes duplicates, counts
// edges. The builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	total := 0
	for u := range b.adj {
		lst := b.adj[u]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		w := 0
		for i, v := range lst {
			if i > 0 && lst[i-1] == v && w > 0 && lst[w-1] == v {
				continue
			}
			lst[w] = v
			w++
		}
		b.adj[u] = lst[:w]
		total += w
	}
	g := &Graph{adj: b.adj, edges: total / 2}
	b.adj = nil
	return g
}

// FromEdges builds a graph over n nodes from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}
