package graph

// Builder accumulates undirected edges and produces an immutable CSR Graph.
// Duplicate edges and self-loops are silently dropped at Build, matching how
// the paper treats its datasets as simple graphs.
//
// The builder stores pending edges as one flat pair list (8 bytes per edge)
// plus a per-node degree counter — no per-node slices — so building a
// million-node graph costs a handful of large allocations instead of a
// million small ones, and Build turns the pairs into CSR with a counting
// sort.
type Builder struct {
	n     int
	pairs []Edge
	deg   []int32
	// seen is built lazily on the first HasEdgeSlow call and maintained by
	// AddEdge afterwards, so generators that probe for duplicates pay O(1)
	// per probe after a one-time O(edges) index build.
	seen map[EdgeKey]struct{}
}

// NewBuilder returns a builder for a graph over n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	return &Builder{n: n, deg: make([]int32, n)}
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the undirected edge (u, v). Self-loops are ignored.
// Out-of-range endpoints panic: generator bugs should fail loudly.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic("graph: AddEdge endpoint out of range")
	}
	if u == v {
		return
	}
	b.pairs = append(b.pairs, Edge{u, v})
	b.deg[u]++
	b.deg[v]++
	if b.seen != nil {
		b.seen[KeyOf(u, v)] = struct{}{}
	}
}

// HasEdgeSlow reports whether (u, v) has been added. The first call indexes
// every pending edge (hence the historical name); subsequent calls are O(1).
// Intended for generators that need duplicate checks while building sparse
// graphs.
func (b *Builder) HasEdgeSlow(u, v NodeID) bool {
	if b.seen == nil {
		b.seen = make(map[EdgeKey]struct{}, len(b.pairs))
		for _, e := range b.pairs {
			b.seen[e.Key()] = struct{}{}
		}
	}
	_, ok := b.seen[KeyOf(u, v)]
	return ok
}

// Degree returns the current (pre-dedup) degree of u.
func (b *Builder) Degree(u NodeID) int { return int(b.deg[u]) }

// Build finalizes the graph: a counting sort scatters the flat pair list
// into CSR rows, then each row is sorted and deduplicated in place. The
// builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	offsets := make([]uint32, b.n+1)
	for u, d := range b.deg {
		offsets[u+1] = offsets[u] + uint32(d)
	}
	neigh := make([]NodeID, offsets[b.n])
	cursor := make([]uint32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.pairs {
		neigh[cursor[e.U]] = e.V
		cursor[e.U]++
		neigh[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	b.pairs, b.deg, b.seen = nil, nil, nil
	return finishCSR(offsets, neigh)
}

// FromEdges builds a graph over n nodes from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}
