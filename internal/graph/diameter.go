package graph

import "rewire/internal/rng"

// EffectiveDiameter estimates the 90th-percentile effective diameter reported
// in the paper's Table I: the (linearly interpolated) distance d such that 90%
// of connected node pairs are within d hops. It BFSes from up to samples
// random sources (all nodes if samples >= N), which matches how SNAP-style
// tables are produced for large graphs.
func (g *Graph) EffectiveDiameter(percentile float64, samples int, r *rng.Rand) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	if percentile <= 0 || percentile > 1 {
		percentile = 0.9
	}
	var sources []int
	if samples >= n {
		sources = make([]int, n)
		for i := range sources {
			sources[i] = i
		}
	} else {
		sources = rng.SampleWithoutReplacement(r, n, samples)
	}
	// counts[d] = number of (source, target) pairs at distance exactly d.
	var counts []int64
	var reachable int64
	for _, s := range sources {
		dist := g.BFS(NodeID(s))
		for v, d := range dist {
			if d <= 0 || v == s {
				continue // unreachable or self
			}
			for int(d) >= len(counts) {
				counts = append(counts, 0)
			}
			counts[d]++
			reachable++
		}
	}
	if reachable == 0 {
		return 0
	}
	target := percentile * float64(reachable)
	cum := int64(0)
	for d := 0; d < len(counts); d++ {
		next := cum + counts[d]
		if float64(next) >= target {
			// Interpolate within hop d between the cumulative fraction at
			// d-1 and at d, yielding the fractional diameters seen in
			// Table I (e.g. 4.8).
			if counts[d] == 0 {
				return float64(d)
			}
			frac := (target - float64(cum)) / float64(counts[d])
			return float64(d-1) + frac
		}
		cum = next
	}
	return float64(len(counts) - 1)
}
