package graph

// BFS runs a breadth-first search from src and returns dist[v] = hop distance
// from src, with -1 for unreachable nodes.
func (g *Graph) BFS(src NodeID) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ConnectedComponents labels each node with a component index and returns the
// labels plus the number of components.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	labels = make([]int32, g.NumNodes())
	for i := range labels {
		labels[i] = -1
	}
	var queue []NodeID
	for s := 0; s < g.NumNodes(); s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(count)
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if labels[v] < 0 {
					labels[v] = int32(count)
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// IsConnected reports whether the graph is connected (the empty graph is
// considered connected).
func (g *Graph) IsConnected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// LargestComponent returns the induced subgraph of the largest connected
// component along with a mapping newID -> oldID. Generators use it when a
// sparse random model (e.g. the latent-space graphs of Fig 10) yields
// stragglers.
func (g *Graph) LargestComponent() (*Graph, []NodeID) {
	labels, count := g.ConnectedComponents()
	if count <= 1 {
		ids := make([]NodeID, g.NumNodes())
		for i := range ids {
			ids[i] = NodeID(i)
		}
		return g, ids
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	return g.InducedSubgraph(func(u NodeID) bool { return labels[u] == int32(best) })
}

// InducedSubgraph returns the subgraph induced by nodes satisfying keep,
// with nodes renumbered densely, plus the newID -> oldID mapping.
func (g *Graph) InducedSubgraph(keep func(NodeID) bool) (*Graph, []NodeID) {
	remap := make([]NodeID, g.NumNodes())
	var ids []NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if keep(NodeID(u)) {
			remap[u] = NodeID(len(ids))
			ids = append(ids, NodeID(u))
		} else {
			remap[u] = -1
		}
	}
	b := NewBuilder(len(ids))
	for newU, oldU := range ids {
		for _, v := range g.Neighbors(oldU) {
			if remap[v] >= 0 && oldU < v {
				b.AddEdge(NodeID(newU), remap[v])
			}
		}
	}
	return b.Build(), ids
}

// Eccentricity returns the maximum finite BFS distance from src (0 if src is
// isolated).
func (g *Graph) Eccentricity(src NodeID) int {
	dist := g.BFS(src)
	m := int32(0)
	for _, d := range dist {
		if d > m {
			m = d
		}
	}
	return int(m)
}
