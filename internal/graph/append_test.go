package graph

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotAppenderRoundTrip(t *testing.T) {
	rows := map[NodeID][]NodeID{
		0:  {5, 2, 9},
		3:  {},
		4:  {0},
		9:  {9, 8, 7, 6},
		11: {1},
	}
	path := filepath.Join(t.TempDir(), "directed.csr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewSnapshotAppender(f, 12)
	if err != nil {
		t.Fatalf("NewSnapshotAppender: %v", err)
	}
	for _, id := range []NodeID{0, 3, 4, 9, 11} {
		if err := app.Append(id, rows[id]); err != nil {
			t.Fatalf("Append(%d): %v", id, err)
		}
	}
	if err := app.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer s.Close()
	if !s.Directed() {
		t.Error("appended snapshot not marked directed")
	}
	if s.NumNodes() != 12 || s.NumEdges() != 9 {
		t.Errorf("nodes=%d edges=%d, want 12, 9", s.NumNodes(), s.NumEdges())
	}
	for id := NodeID(0); id < 12; id++ {
		want := rows[id]
		got, err := s.Neighbors(id)
		if err != nil {
			t.Fatalf("Neighbors(%d): %v", id, err)
		}
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", id, got, want)
			}
		}
	}
}

func TestSnapshotAppenderEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.csr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewSnapshotAppender(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot(empty): %v", err)
	}
	defer s.Close()
	if s.NumNodes() != 0 {
		t.Errorf("NumNodes = %d", s.NumNodes())
	}
}

func TestSnapshotAppenderRejectsMisuse(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "x.csr"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	app, err := NewSnapshotAppender(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Append(3, nil); err != nil {
		t.Fatal(err)
	}
	if err := app.Append(3, nil); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := app.Append(2, nil); err == nil {
		t.Error("out-of-order id accepted")
	}
	if err := app.Append(5, nil); err == nil {
		t.Error("out-of-range id accepted")
	}
	if err := app.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := app.Append(4, nil); err == nil {
		t.Error("append after Finish accepted")
	}
	if err := app.Finish(); err == nil {
		t.Error("double Finish accepted")
	}
}

// TestDirectedSnapshotRejectsV1Invariant pins the version split: a v1 header
// whose edge count matches the directed rule (edges == entries) must fail,
// and a v2 header with the undirected rule must fail.
func TestDirectedSnapshotHeaderRules(t *testing.T) {
	g := NewFromAdjacency([][]NodeID{{1}, {0, 2}, {1, 3}, {2}, {}, {}})
	path := filepath.Join(t.TempDir(), "v1.csr")
	if err := g.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Directed() {
		t.Error("v1 snapshot reported directed")
	}
	s.Close()
}
