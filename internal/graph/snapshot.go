package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Snapshot file format (version 1, little-endian throughout):
//
//	offset  size  field
//	     0     8  magic "RWIRCSR1"
//	     8     4  version (1)
//	    12     4  byte-order mark 0x1A2B3C4D
//	    16     8  numNodes
//	    24     8  numEntries (directed adjacency entries, len(neigh))
//	    32     8  numEdges (undirected)
//	    40     4  IEEE CRC-32 of bytes [0, 40)
//	    44     4  reserved (0)
//	    48     4*(numNodes+1)   offsets, uint32
//	     …     4*numEntries     neighbors, int32
//
// The layout is exactly the in-memory CSR of Graph, so a crawl snapshot opens
// in O(1): the header and the two array bounds are all that must be read
// before the first neighbor access. Both arrays start 4-byte aligned, which
// is what lets the linux mmap path hand out zero-copy views.
const (
	snapshotMagic      = "RWIRCSR1"
	snapshotVersion    = 1
	snapshotBOM        = 0x1A2B3C4D
	snapshotHeaderSize = 48

	// snapshotVersionDirected (version 2) reuses the exact same layout for a
	// DIRECTED adjacency: rows are arbitrary neighbor lists with no mirror-edge
	// invariant, and the numEdges field holds the directed entry count
	// (numEdges == numEntries). The durable crawl cache compacts into this
	// form — a partially crawled neighborhood has no symmetric closure to
	// promise. Version 1 files keep the undirected edges*2 == entries check.
	snapshotVersionDirected = 2
)

// ErrSnapshotFormat reports a snapshot that cannot be opened: truncated or
// corrupt header, unknown version, foreign byte order, or array bounds that
// disagree with the file size. Wrapped errors carry the specific reason.
var ErrSnapshotFormat = errors.New("graph: invalid snapshot")

// WriteSnapshot serializes the graph in the binary CSR snapshot format. The
// write is streaming (constant memory beyond a small buffer), so graphs near
// the int32 entry bound serialize without doubling their footprint.
func (g *Graph) WriteSnapshot(w io.Writer) error {
	var hdr [snapshotHeaderSize]byte
	copy(hdr[0:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapshotVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], snapshotBOM)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(g.neigh)))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(g.edges))
	binary.LittleEndian.PutUint32(hdr[40:44], crc32.ChecksumIEEE(hdr[:40]))
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var scratch [4]byte
	offsets := g.offsets
	if len(offsets) == 0 {
		offsets = []uint32{0} // an empty graph still writes offsets[0]
	}
	for _, o := range offsets {
		binary.LittleEndian.PutUint32(scratch[:], o)
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	for _, v := range g.neigh {
		binary.LittleEndian.PutUint32(scratch[:], uint32(v))
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSnapshotFile writes the graph's snapshot to path (0644, truncating).
func (g *Graph) WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Snapshot is a read-only CSR graph opened from a snapshot file without
// rebuilding: on linux the arrays are mmap'd views (zero-copy, demand-paged),
// elsewhere — or via OpenSnapshotReaderAt — the offsets load eagerly and
// neighbor rows are read per access through an io.ReaderAt. Either way the
// open cost is independent of the edge count.
//
// A Snapshot is safe for concurrent use. Close releases the mapping (or the
// underlying file); neighbor slices returned by the mmap path are views into
// the mapping and die with it.
type Snapshot struct {
	nodes    int
	edges    int
	entries  int
	directed bool

	// mmap mode: both arrays are views into data.
	offsets []uint32
	neigh   []NodeID

	// readerAt mode: offsets are a heap copy, rows are read through r at
	// dataOff + 4*lo.
	r       io.ReaderAt
	dataOff int64

	closer func() error
}

// snapshotHeader is the decoded, validated fixed-size header.
type snapshotHeader struct {
	nodes, entries, edges int
	directed              bool
}

// snapshotTooShort is the shared "file shorter than the header" failure, so
// the mmap and ReaderAt paths reject truncated files identically.
func snapshotTooShort(size int64) error {
	return fmt.Errorf("%w: %d-byte file shorter than the %d-byte header", ErrSnapshotFormat, size, snapshotHeaderSize)
}

// parseSnapshotHeader validates the fixed-size header against the total file
// size and returns the decoded counts.
func parseSnapshotHeader(hdr []byte, size int64) (snapshotHeader, error) {
	var h snapshotHeader
	if len(hdr) < snapshotHeaderSize {
		return h, snapshotTooShort(int64(len(hdr)))
	}
	if string(hdr[0:8]) != snapshotMagic {
		return h, fmt.Errorf("%w: bad magic %q", ErrSnapshotFormat, hdr[0:8])
	}
	version := binary.LittleEndian.Uint32(hdr[8:12])
	if version != snapshotVersion && version != snapshotVersionDirected {
		return h, fmt.Errorf("%w: unsupported version %d", ErrSnapshotFormat, version)
	}
	h.directed = version == snapshotVersionDirected
	if bom := binary.LittleEndian.Uint32(hdr[12:16]); bom != snapshotBOM {
		return h, fmt.Errorf("%w: byte-order mark %#x (foreign endianness?)", ErrSnapshotFormat, bom)
	}
	if want, got := binary.LittleEndian.Uint32(hdr[40:44]), crc32.ChecksumIEEE(hdr[:40]); want != got {
		return h, fmt.Errorf("%w: header checksum %#x, computed %#x", ErrSnapshotFormat, want, got)
	}
	nodes := binary.LittleEndian.Uint64(hdr[16:24])
	entries := binary.LittleEndian.Uint64(hdr[24:32])
	edges := binary.LittleEndian.Uint64(hdr[32:40])
	if nodes > math.MaxInt32 || entries > math.MaxInt32 || edges > math.MaxInt32 {
		return h, fmt.Errorf("%w: counts exceed the int32 ID space (nodes=%d entries=%d edges=%d)", ErrSnapshotFormat, nodes, entries, edges)
	}
	if h.directed {
		if edges != entries {
			return h, fmt.Errorf("%w: directed snapshot has %d edges but %d entries", ErrSnapshotFormat, edges, entries)
		}
	} else if edges*2 != entries {
		return h, fmt.Errorf("%w: %d edges inconsistent with %d directed entries", ErrSnapshotFormat, edges, entries)
	}
	want := int64(snapshotHeaderSize) + 4*(int64(nodes)+1) + 4*int64(entries)
	if size != want {
		return h, fmt.Errorf("%w: file size %d, header implies %d", ErrSnapshotFormat, size, want)
	}
	h.nodes, h.entries, h.edges = int(nodes), int(entries), int(edges)
	return h, nil
}

// OpenSnapshot opens a snapshot file. On linux (little-endian) the arrays
// are mmap'd; elsewhere the file stays open as an io.ReaderAt and rows are
// read on demand. Close the snapshot when done.
func OpenSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if s, err := openSnapshotMmap(f, st.Size()); err == nil {
		f.Close() // the mapping outlives the descriptor
		return s, nil
	} else if !errors.Is(err, errMmapUnsupported) {
		f.Close()
		return nil, err
	}
	s, err := OpenSnapshotReaderAt(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f.Close
	return s, nil
}

// OpenSnapshotReaderAt opens a snapshot through any io.ReaderAt — the
// portable path, and the one the corrupt-input fuzzing drives. The offsets
// array is loaded eagerly (4·(n+1) bytes); neighbor rows are read per access.
// The caller retains ownership of r (Close on the returned snapshot does not
// close it).
func OpenSnapshotReaderAt(r io.ReaderAt, size int64) (*Snapshot, error) {
	var hdr [snapshotHeaderSize]byte
	if size < snapshotHeaderSize {
		return nil, snapshotTooShort(size)
	}
	if _, err := io.ReadFull(io.NewSectionReader(r, 0, snapshotHeaderSize), hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrSnapshotFormat, err)
	}
	h, err := parseSnapshotHeader(hdr[:], size)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, 4*(h.nodes+1))
	if _, err := r.ReadAt(raw, snapshotHeaderSize); err != nil {
		return nil, fmt.Errorf("%w: reading offsets: %v", ErrSnapshotFormat, err)
	}
	offsets := make([]uint32, h.nodes+1)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	s := &Snapshot{
		nodes:    h.nodes,
		edges:    h.edges,
		entries:  h.entries,
		directed: h.directed,
		offsets:  offsets,
		r:        r,
		dataOff:  snapshotHeaderSize + 4*(int64(h.nodes)+1),
	}
	if err := s.checkOffsets(); err != nil {
		return nil, err
	}
	return s, nil
}

// checkOffsets validates the cheap global bounds: offsets[0] == 0 and
// offsets[n] == numEntries. Per-row monotonicity is checked lazily on access
// so open stays O(1) in the edge count (the offsets array itself loads or
// maps in either mode).
func (s *Snapshot) checkOffsets() error {
	if len(s.offsets) == 0 || s.offsets[0] != 0 {
		return fmt.Errorf("%w: offsets[0] != 0", ErrSnapshotFormat)
	}
	if got := s.offsets[s.nodes]; int(got) != s.entries {
		return fmt.Errorf("%w: offsets[%d] = %d, want %d entries", ErrSnapshotFormat, s.nodes, got, s.entries)
	}
	return nil
}

// NumNodes returns the node count.
func (s *Snapshot) NumNodes() int { return s.nodes }

// NumEdges returns the undirected edge count, or — for directed snapshots —
// the directed adjacency entry count.
func (s *Snapshot) NumEdges() int { return s.edges }

// Directed reports whether the snapshot is a version-2 directed adjacency
// (no mirror-edge invariant) rather than an undirected CSR.
func (s *Snapshot) Directed() bool { return s.directed }

// Degree returns v's degree without touching the neighbor array, or an error
// for ids outside the snapshot or rows with corrupt bounds.
func (s *Snapshot) Degree(v NodeID) (int, error) {
	lo, hi, err := s.row(v)
	if err != nil {
		return 0, err
	}
	return int(hi - lo), nil
}

// row resolves and validates v's CSR bounds.
func (s *Snapshot) row(v NodeID) (lo, hi uint32, err error) {
	if v < 0 || int(v) >= s.nodes {
		return 0, 0, fmt.Errorf("graph: snapshot has no node %d", v)
	}
	lo, hi = s.offsets[v], s.offsets[v+1]
	if lo > hi || int(hi) > s.entries {
		return 0, 0, fmt.Errorf("%w: node %d row [%d, %d) outside %d entries", ErrSnapshotFormat, v, lo, hi, s.entries)
	}
	return lo, hi, nil
}

// Neighbors returns v's neighbor list. In mmap mode the slice is a zero-copy
// view into the mapping (valid until Close, do not modify); in readerAt mode
// it is freshly read and owned by the caller.
func (s *Snapshot) Neighbors(v NodeID) ([]NodeID, error) {
	lo, hi, err := s.row(v)
	if err != nil {
		return nil, err
	}
	if s.neigh != nil {
		//rewirelint:allow aliasing zero-copy mmap view is the documented contract; valid until Close, capacity clipped
		return s.neigh[lo:hi:hi], nil
	}
	raw := make([]byte, 4*(hi-lo))
	if _, err := s.r.ReadAt(raw, s.dataOff+4*int64(lo)); err != nil {
		return nil, fmt.Errorf("%w: reading node %d row: %v", ErrSnapshotFormat, v, err)
	}
	out := make([]NodeID, hi-lo)
	for i := range out {
		out[i] = NodeID(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// Close releases the mapping or file handle. Neighbor views handed out by the
// mmap path must not be used afterwards.
func (s *Snapshot) Close() error {
	if s.closer == nil {
		return nil
	}
	c := s.closer
	s.closer = nil
	return c()
}

// errMmapUnsupported signals that the platform (or endianness) has no
// zero-copy mapping path and the caller should fall back to io.ReaderAt.
var errMmapUnsupported = errors.New("graph: snapshot mmap unsupported")
