package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

// SnapshotAppender streams a version-2 (directed) snapshot into a file one
// row at a time, in ascending node-id order, without holding the adjacency
// in memory: the header and offsets region are reserved up front, neighbor
// rows append sequentially behind them, and Finish back-fills both regions
// with a WriteAt. This is the incremental-append path the durable cache's
// compactor uses to fold a crawl larger than RAM into snapshot form — only
// the offsets array (4·(numNodes+1) bytes) is resident.
//
// Nodes skipped between appends get empty rows, so a sparse crawl over a
// large id space serializes without materializing the gaps.
type SnapshotAppender struct {
	f        *os.File
	bw       *bufio.Writer
	offsets  []uint32
	next     NodeID // lowest id still appendable
	entries  int64
	finished bool
}

// NewSnapshotAppender starts a directed snapshot of numNodes nodes in f,
// which must be empty and positioned at the start. The caller owns f and is
// responsible for syncing and closing it after Finish.
func NewSnapshotAppender(f *os.File, numNodes int) (*SnapshotAppender, error) {
	if numNodes < 0 || numNodes > math.MaxInt32 {
		return nil, fmt.Errorf("graph: snapshot appender: %d nodes outside the int32 id space", numNodes)
	}
	dataOff := int64(snapshotHeaderSize) + 4*(int64(numNodes)+1)
	if _, err := f.Seek(dataOff, 0); err != nil {
		return nil, fmt.Errorf("graph: snapshot appender: seeking past offsets region: %w", err)
	}
	return &SnapshotAppender{
		f:       f,
		bw:      bufio.NewWriterSize(f, 1<<16),
		offsets: make([]uint32, numNodes+1),
	}, nil
}

// Append writes v's neighbor row. Ids must arrive in strictly ascending
// order; gaps become empty rows.
func (a *SnapshotAppender) Append(v NodeID, nbrs []NodeID) error {
	if a.finished {
		return fmt.Errorf("graph: snapshot appender: append after Finish")
	}
	if v < a.next || int(v) >= len(a.offsets)-1 {
		return fmt.Errorf("graph: snapshot appender: node %d out of order or outside %d nodes", v, len(a.offsets)-1)
	}
	if a.entries+int64(len(nbrs)) > math.MaxInt32 {
		return fmt.Errorf("graph: snapshot appender: entry count exceeds the int32 bound")
	}
	for u := a.next; u <= v; u++ {
		a.offsets[u] = uint32(a.entries)
	}
	a.next = v + 1
	var scratch [4]byte
	for _, n := range nbrs {
		binary.LittleEndian.PutUint32(scratch[:], uint32(n))
		if _, err := a.bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	a.entries += int64(len(nbrs))
	return nil
}

// Finish flushes the rows, then back-fills the offsets region and the
// version-2 header. The file is complete (but not yet synced) on return.
func (a *SnapshotAppender) Finish() error {
	if a.finished {
		return fmt.Errorf("graph: snapshot appender: double Finish")
	}
	a.finished = true
	for u := int(a.next); u < len(a.offsets); u++ {
		a.offsets[u] = uint32(a.entries)
	}
	if err := a.bw.Flush(); err != nil {
		return err
	}
	region := make([]byte, 4*len(a.offsets))
	for i, o := range a.offsets {
		binary.LittleEndian.PutUint32(region[4*i:], o)
	}
	if _, err := a.f.WriteAt(region, snapshotHeaderSize); err != nil {
		return fmt.Errorf("graph: snapshot appender: writing offsets: %w", err)
	}
	var hdr [snapshotHeaderSize]byte
	copy(hdr[0:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapshotVersionDirected)
	binary.LittleEndian.PutUint32(hdr[12:16], snapshotBOM)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(a.offsets)-1))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(a.entries))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(a.entries)) // directed: edges == entries
	binary.LittleEndian.PutUint32(hdr[40:44], crc32.ChecksumIEEE(hdr[:40]))
	if _, err := a.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("graph: snapshot appender: writing header: %w", err)
	}
	return nil
}
