package rewire

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rewire/internal/osn"
)

// ringBackend is the coalescer tests' inner backend: a ring graph with
// instrumented Fetch (call log, concurrency high-water mark, an optional
// gate that holds every call until released, an optional per-call delay).
type ringBackend struct {
	n     int
	gate  chan struct{} // non-nil: each Fetch receives once before answering
	delay time.Duration

	mu       sync.Mutex
	calls    [][]NodeID
	inflight int
	maxInfl  int
}

func (f *ringBackend) neighbors(v NodeID) []NodeID {
	n := NodeID(f.n)
	return []NodeID{(v + 1) % n, (v + n - 1) % n}
}

func (f *ringBackend) Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	f.mu.Lock()
	f.calls = append(f.calls, slices.Clone(ids))
	f.inflight++
	if f.inflight > f.maxInfl {
		f.maxInfl = f.inflight
	}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.inflight--
		f.mu.Unlock()
	}()
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([][]NodeID, len(ids))
	for i, v := range ids {
		if v < 0 || int(v) >= f.n {
			return nil, fmt.Errorf("%w: id %d", ErrNoSuchUser, v)
		}
		out[i] = f.neighbors(v)
	}
	return out, nil
}

func (f *ringBackend) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

func batchStats(t *testing.T, b Backend) BatchStats {
	t.Helper()
	bs, ok := BackendAs[BatchStatser](b)
	if !ok {
		t.Fatal("WithBatching backend does not expose BatchStats")
	}
	return bs.BatchStats()
}

// TestBatchingIdleDispatchesImmediately pins the zero-added-latency
// guarantee: a lone demand on an idle dispatcher goes straight to the wire,
// no window wait.
func TestBatchingIdleDispatchesImmediately(t *testing.T) {
	inner := &ringBackend{n: 64}
	// An hour-long MaxWait: if the idle path waited on the timer at all, the
	// test would hang instead of pass.
	b := WithBatching(inner, BatchingOptions{MaxWait: time.Hour})
	lists, err := b.Fetch(context.Background(), []NodeID{7})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(lists[0], inner.neighbors(7)) {
		t.Fatalf("lists[0] = %v, want %v", lists[0], inner.neighbors(7))
	}
	st := batchStats(t, b)
	if st.Batches != 1 || st.FlushIdle != 1 || st.IDs != 1 {
		t.Fatalf("stats = %+v, want one idle-flushed single-id batch", st)
	}
}

// TestBatchingCoalescesConcurrentDemand is the tentpole's core property:
// k concurrent single-id misses become far fewer backend round-trips, each
// caller still getting exactly its own answer.
func TestBatchingCoalescesConcurrentDemand(t *testing.T) {
	const k = 32
	inner := &ringBackend{n: 256, delay: 2 * time.Millisecond}
	b := WithBatching(inner, BatchingOptions{MaxBatch: 16, MaxWait: time.Millisecond, MaxInflight: 2})
	var wg sync.WaitGroup
	errc := make(chan error, k)
	for i := range k {
		wg.Add(1)
		go func(v NodeID) {
			defer wg.Done()
			lists, err := b.Fetch(context.Background(), []NodeID{v})
			if err != nil {
				errc <- err
				return
			}
			if !slices.Equal(lists[0], inner.neighbors(v)) {
				errc <- fmt.Errorf("id %d: got %v", v, lists[0])
			}
		}(NodeID(i * 3))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := batchStats(t, b)
	if st.IDs != k {
		t.Fatalf("dispatched %d ids, want %d", st.IDs, k)
	}
	if got := inner.callCount(); got >= k {
		t.Fatalf("%d concurrent misses produced %d round-trips — no coalescing", k, got)
	}
	if int64(inner.callCount()) != st.Batches {
		t.Fatalf("stats claim %d batches, backend saw %d", st.Batches, inner.callCount())
	}
}

// TestBatchingOversizedFetchChunksInOrder: a caller batch far over MaxBatch
// is chunked, capped at MaxInflight concurrent dispatches, and reassembled
// in input order.
func TestBatchingOversizedFetchChunksInOrder(t *testing.T) {
	inner := &ringBackend{n: 512, delay: time.Millisecond}
	b := WithBatching(inner, BatchingOptions{MaxBatch: 8, MaxWait: time.Millisecond, MaxInflight: 3})
	ids := make([]NodeID, 100)
	for i := range ids {
		ids[i] = NodeID((i * 5) % 512)
	}
	lists, err := b.Fetch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ids {
		if !slices.Equal(lists[i], inner.neighbors(v)) {
			t.Fatalf("lists[%d] (id %d) = %v, want %v", i, v, lists[i], inner.neighbors(v))
		}
	}
	inner.mu.Lock()
	maxInfl := inner.maxInfl
	inner.mu.Unlock()
	if maxInfl > 3 {
		t.Fatalf("backend saw %d concurrent fetches, cap is 3", maxInfl)
	}
	if st := batchStats(t, b); st.FlushFull == 0 {
		t.Fatalf("stats = %+v, want full-window flushes for an oversized batch", st)
	}
}

// TestBatchingMaxWaitFlushesBehindInflight: while a dispatch is in flight,
// newly accumulated demand must not wait for it longer than MaxWait — the
// timer flushes the window alongside.
func TestBatchingMaxWaitFlushesBehindInflight(t *testing.T) {
	inner := &ringBackend{n: 64, gate: make(chan struct{})}
	b := WithBatching(inner, BatchingOptions{MaxBatch: 16, MaxWait: 5 * time.Millisecond, MaxInflight: 4})

	first := make(chan error, 1)
	go func() {
		_, err := b.Fetch(context.Background(), []NodeID{1})
		first <- err
	}()
	// Wait until the first demand is on the wire (holding the gate).
	deadline := time.Now().Add(5 * time.Second)
	for inner.callCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first dispatch never reached the backend")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// The second demand lands in a non-idle window; only the MaxWait timer
	// can flush it while the first call blocks on the gate.
	done := make(chan error, 1)
	go func() {
		lists, err := b.Fetch(context.Background(), []NodeID{2})
		if err == nil && !slices.Equal(lists[0], inner.neighbors(2)) {
			err = fmt.Errorf("wrong answer %v", lists[0])
		}
		done <- err
	}()
	// Only the MaxWait timer can put the second batch on the wire while the
	// first still holds the gate; wait for that, then release both.
	deadline = time.Now().Add(5 * time.Second)
	for inner.callCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("timer never flushed the second demand")
		}
		time.Sleep(100 * time.Microsecond)
	}
	inner.gate <- struct{}{}
	inner.gate <- struct{}{}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second demand never flushed while first was in flight")
	}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if st := batchStats(t, b); st.FlushTimer == 0 {
		t.Fatalf("stats = %+v, want a timer flush", st)
	}
}

// TestBatchingDrainFlushesOnCompletion: demand accumulated behind a full
// MaxInflight pipeline is dispatched the moment a slot frees, without
// waiting out MaxWait.
func TestBatchingDrainFlushesOnCompletion(t *testing.T) {
	inner := &ringBackend{n: 64, gate: make(chan struct{})}
	// MaxWait far beyond the test timeout: only the completion drain can
	// flush the queued demand.
	b := WithBatching(inner, BatchingOptions{MaxBatch: 16, MaxWait: time.Hour, MaxInflight: 1})

	first := make(chan error, 1)
	go func() {
		_, err := b.Fetch(context.Background(), []NodeID{1})
		first <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for inner.callCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first dispatch never reached the backend")
		}
		time.Sleep(100 * time.Microsecond)
	}
	second := make(chan error, 1)
	go func() {
		_, err := b.Fetch(context.Background(), []NodeID{2, 3})
		second <- err
	}()
	// Give the second demand a moment to enqueue, then complete the first
	// fetch; the drain must dispatch the queued window.
	time.Sleep(2 * time.Millisecond)
	inner.gate <- struct{}{}
	inner.gate <- struct{}{}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-second:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued demand never drained after completion")
	}
	if st := batchStats(t, b); st.FlushDrain == 0 {
		t.Fatalf("stats = %+v, want a drain flush", st)
	}
}

// TestBatchingWithdrawCancelsAbandonedBatch: when every waiter of an
// in-flight batch cancels, the wire request itself is cancelled; the waiters
// get their context error.
func TestBatchingWithdrawCancelsAbandonedBatch(t *testing.T) {
	inner := &ringBackend{n: 64, gate: make(chan struct{})}
	b := WithBatching(inner, BatchingOptions{MaxWait: time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := b.Fetch(ctx, []NodeID{5})
		res <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for inner.callCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatch never reached the backend")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("Fetch err = %v, want context.Canceled", err)
	}
	// The backend's blocked call must observe the batch context dying — the
	// gate is never released, so only cancellation can unblock it.
	deadline = time.Now().Add(5 * time.Second)
	for {
		inner.mu.Lock()
		infl := inner.inflight
		inner.mu.Unlock()
		if infl == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned batch was never cancelled on the wire")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if st := batchStats(t, b); st.Withdrawn != 1 {
		t.Fatalf("stats = %+v, want Withdrawn = 1", st)
	}
}

// TestBatchingWithdrawLeavesWindow: cancelling a demand still in the window
// removes it — the next flush must not carry the withdrawn id.
func TestBatchingWithdrawLeavesWindow(t *testing.T) {
	inner := &ringBackend{n: 64, gate: make(chan struct{})}
	b := WithBatching(inner, BatchingOptions{MaxBatch: 16, MaxWait: time.Hour, MaxInflight: 1})

	first := make(chan error, 1)
	go func() {
		_, err := b.Fetch(context.Background(), []NodeID{1})
		first <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for inner.callCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first dispatch never reached the backend")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Queue a demand behind the busy pipeline, then cancel it while it still
	// sits in the window.
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := b.Fetch(ctx, []NodeID{9})
		queued <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued Fetch err = %v, want context.Canceled", err)
	}
	inner.gate <- struct{}{}
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	// Nothing remains to dispatch: the withdrawn id must never hit the wire.
	time.Sleep(5 * time.Millisecond)
	inner.mu.Lock()
	calls := slices.Clone(inner.calls)
	inner.mu.Unlock()
	for _, call := range calls {
		if slices.Contains(call, 9) {
			t.Fatalf("withdrawn id 9 reached the backend: %v", calls)
		}
	}
}

// TestBatchingFallbackIsolatesUnknownID: the inner backend has no
// PartialFetcher and fails whole batches with ErrNoSuchUser; a stranger
// coalesced with the bad id must still get its answer, and the demander of
// the bad id exactly its error.
func TestBatchingFallbackIsolatesUnknownID(t *testing.T) {
	inner := &ringBackend{n: 64, gate: make(chan struct{})}
	b := WithBatching(inner, BatchingOptions{MaxBatch: 16, MaxWait: time.Hour, MaxInflight: 1})

	// Occupy the single dispatch slot so the next two demands coalesce.
	first := make(chan error, 1)
	go func() {
		_, err := b.Fetch(context.Background(), []NodeID{1})
		first <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for inner.callCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first dispatch never reached the backend")
		}
		time.Sleep(100 * time.Microsecond)
	}
	good := make(chan error, 1)
	bad := make(chan error, 1)
	go func() {
		lists, err := b.Fetch(context.Background(), []NodeID{3})
		if err == nil && !slices.Equal(lists[0], inner.neighbors(3)) {
			err = fmt.Errorf("wrong answer %v", lists[0])
		}
		good <- err
	}()
	go func() {
		_, err := b.Fetch(context.Background(), []NodeID{999})
		bad <- err
	}()
	// Wait for both to coalesce into the window, then release the pipeline.
	waitPending(t, b, 2)
	close(inner.gate) // every later fetch passes straight through
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-good; err != nil {
		t.Fatalf("stranger coalesced with a bad id got %v, want its answer", err)
	}
	if err := <-bad; !errors.Is(err, ErrNoSuchUser) {
		t.Fatalf("bad id err = %v, want ErrNoSuchUser", err)
	}
}

// waitPending spins until the dispatcher's window holds n ids.
func waitPending(t *testing.T, b Backend, n int) {
	t.Helper()
	c, ok := b.(*batchingBackend)
	if !ok {
		t.Fatal("not a batching backend")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		pending := len(c.pending)
		c.mu.Unlock()
		if pending >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("window never reached %d pending ids", n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// partialRing implements PartialFetcher natively; used counts proves the
// dispatcher prefers the capability over the strict fallback.
type partialRing struct {
	ringBackend
	used atomic.Int64
}

func (p *partialRing) FetchPartial(ctx context.Context, ids []NodeID) ([][]NodeID, []error, error) {
	p.used.Add(1)
	lists := make([][]NodeID, len(ids))
	var errs []error
	for i, v := range ids {
		if v < 0 || int(v) >= p.n {
			if errs == nil {
				errs = make([]error, len(ids))
			}
			errs[i] = fmt.Errorf("%w: id %d", ErrNoSuchUser, v)
			continue
		}
		lists[i] = p.neighbors(v)
	}
	return lists, errs, nil
}

// TestBatchingUsesPartialFetcher: a backend advertising FetchPartial gets
// per-id dispatch — mixed good/bad batches resolve in one round-trip.
func TestBatchingUsesPartialFetcher(t *testing.T) {
	inner := &partialRing{ringBackend: ringBackend{n: 64}}
	b := WithBatching(inner, BatchingOptions{})
	if _, err := b.Fetch(context.Background(), []NodeID{2, 999}); !errors.Is(err, ErrNoSuchUser) {
		t.Fatalf("err = %v, want ErrNoSuchUser", err)
	}
	lists, err := b.Fetch(context.Background(), []NodeID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(lists[1], inner.neighbors(3)) {
		t.Fatalf("lists[1] = %v, want %v", lists[1], inner.neighbors(3))
	}
	if inner.used.Load() == 0 {
		t.Fatal("native FetchPartial was never used")
	}
	if got := inner.callCount(); got != 0 {
		t.Fatalf("strict Fetch was called %d times despite the PartialFetcher capability", got)
	}
}

// TestBatchingRaceHammer drives the full client stack — demand queries,
// cancellation, tenant billing, and the speculative prefetch pool — through
// one coalescing window under -race, then checks the ledger invariants the
// paper's cost model depends on: every cached response is billed exactly
// once or parked speculative, and per-tenant bills sum to the total.
func TestBatchingRaceHammer(t *testing.T) {
	const (
		nodes   = 128
		workers = 8
		queries = 120
	)
	inner := &ringBackend{n: nodes, delay: 200 * time.Microsecond}
	bb := WithBatching(inner, BatchingOptions{MaxBatch: 8, MaxWait: 500 * time.Microsecond, MaxInflight: 4})
	client := osn.NewPrefetchingClient(newOSNBackend(bb), osn.PrefetchConfig{Workers: 4, Depth: 1})
	defer client.StopPrefetch()

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			ctx := osn.WithTenant(context.Background(), fmt.Sprintf("tenant-%d", w%3))
			for q := range queries {
				id := NodeID(rng.IntN(nodes))
				switch q % 4 {
				case 0:
					// Demand with a racing cancellation: sometimes the answer
					// lands first, sometimes the withdrawal does.
					cctx, cancel := context.WithTimeout(ctx, time.Duration(rng.IntN(300))*time.Microsecond)
					_, err := client.QueryContext(cctx, id)
					cancel()
					if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
						errc <- fmt.Errorf("worker %d: cancelled query: %v", w, err)
						return
					}
				case 1:
					// Speculative prefetch racing the demand path (upgrade).
					client.Prefetch(id, NodeID(rng.IntN(nodes)))
					fallthrough
				default:
					// Coalesced waiters share the driving fetch's fate, errors
					// included (singleflight semantics): a context error not
					// our own means the first demander bailed — retry.
					var resp osn.Response
					var err error
					for range 50 {
						resp, err = client.QueryContext(ctx, id)
						if err == nil || (!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)) {
							break
						}
					}
					if err != nil {
						errc <- fmt.Errorf("worker %d: query %d: %v", w, id, err)
						return
					}
					want := inner.neighbors(id)
					if !slices.Equal(resp.Neighbors, want) {
						errc <- fmt.Errorf("worker %d: id %d got %v want %v", w, id, resp.Neighbors, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	client.StopPrefetch()

	unique, spec, cached := client.UniqueQueries(), client.SpeculativeCount(), int64(client.CacheSize())
	if unique+spec != cached {
		t.Fatalf("billing drift: unique %d + speculative %d != cached %d", unique, spec, cached)
	}
	var tenantSum int64
	for name, bill := range client.TenantBills() {
		if bill.Unique < 0 || bill.Reserved != 0 {
			t.Fatalf("tenant %s: bill %+v after quiescence", name, bill)
		}
		tenantSum += bill.Unique
	}
	if tenantSum != unique {
		t.Fatalf("tenant bills sum to %d, client-wide unique is %d", tenantSum, unique)
	}
	st := batchStats(t, bb)
	if st.Batches == 0 || st.IDs < st.Batches {
		t.Fatalf("implausible dispatch stats %+v", st)
	}
}
