package rewire

import (
	"context"
	"fmt"
	"net/url"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"testing"

	"rewire/internal/durable"
)

const crashGraphURL = "mem:social?nodes=400&edges=1600&seed=9"

func cacheURL(dir, src string) string {
	return "cache:" + dir + "?src=" + url.QueryEscape(src)
}

// TestCacheSchemeWarmStart drives the cache: driver end to end: a cold crawl
// through Open("cache:DIR?src=..."), a clean close, then a reopen that must
// recover the full ledger and bill nothing new for the identical crawl.
func TestCacheSchemeWarmStart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	p, err := Open(ctx, cacheURL(dir, crashGraphURL))
	if err != nil {
		t.Fatalf("Open cache: %v", err)
	}
	sess, err := NewSession(p, WithAlgorithm(AlgSRW), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var cold []NodeID
	for v := range sess.Nodes(ctx, 2000) {
		cold = append(cold, v)
	}
	if err := sess.Err(); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	coldUnique := p.UniqueQueries()
	if coldUnique == 0 {
		t.Fatal("cold crawl billed nothing")
	}
	if st, ok := p.DurableCacheStats(); !ok || st.Appends < coldUnique {
		t.Fatalf("stats = %+v, ok=%v; want >= %d appends", st, ok, coldUnique)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	p2, err := Open(ctx, cacheURL(dir, crashGraphURL))
	if err != nil {
		t.Fatalf("reopen cache: %v", err)
	}
	defer p2.Close()
	if got := p2.UniqueQueries(); got != coldUnique {
		t.Fatalf("recovered ledger = %d, want %d", got, coldUnique)
	}
	st, ok := p2.DurableCacheStats()
	if !ok || st.Entries == 0 || st.Replayed == 0 {
		t.Fatalf("reopen stats = %+v, ok=%v; want recovered entries and replayed records", st, ok)
	}
	sess2, err := NewSession(p2, WithAlgorithm(AlgSRW), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for v := range sess2.Nodes(ctx, 2000) {
		if v != cold[i] {
			t.Fatalf("warm trajectory diverged at step %d: %d != %d", i, v, cold[i])
		}
		i++
	}
	if err := sess2.Err(); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if got := p2.UniqueQueries(); got != coldUnique {
		t.Fatalf("warm crawl billed %d new queries", got-coldUnique)
	}
}

// TestCacheSchemeErrors pins the driver's validation and the one-cache-per-
// provider rule.
func TestCacheSchemeErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := OpenBackend(ctx, "cache:?src=mem:barbell"); err == nil {
		t.Error("cache: without a directory accepted")
	}
	if _, err := OpenBackend(ctx, "cache:"+t.TempDir()); err == nil {
		t.Error("cache: without src= accepted")
	}
	if _, err := OpenBackend(ctx, cacheURL(t.TempDir(), "bogus:x")); err == nil {
		t.Error("cache: with an unknown inner scheme accepted")
	}

	p, err := Open(ctx, cacheURL(t.TempDir(), "mem:barbell?n=10"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.AttachDurableCache(t.TempDir()); err == nil {
		t.Error("second durable cache attached to one provider")
	}
	// The directory is flock'd by p: a second session over it must fail.
	if _, err := NewSession(Simulate(Barbell(10), Limits{}), WithDurableCache(p.durable.Dir())); err == nil {
		t.Error("second open of a locked cache directory accepted")
	}
}

// TestWithDurableCacheNeedsProvider pins the option's Provider requirement:
// a free GraphSource has no billed cache to persist.
func TestWithDurableCacheNeedsProvider(t *testing.T) {
	if _, err := NewSession(GraphSource(Barbell(10)), WithDurableCache(t.TempDir())); err == nil {
		t.Fatal("WithDurableCache over a GraphSource accepted")
	}
	if _, err := NewSession(Simulate(Barbell(10), Limits{}), WithDurableCache("")); err == nil {
		t.Fatal("WithDurableCache(\"\") accepted")
	}
}

// chainOptions returns the session options for one named chain of the crash
// matrix. MTO runs with the Theorem 5 extended criterion OFF: that criterion
// consults the cache's degree knowledge, so it is the one chain feature that
// is deliberately cache-SENSITIVE — a warm-started walk knows more and may
// legitimately rewire differently. With it off, all four chains depend only
// on the neighbor lists their own steps demand, which is what makes the
// recovered-cache trajectory comparable to the cold reference byte for byte.
func chainOptions(chain string) []Option {
	switch chain {
	case "MTO":
		return []Option{WithAlgorithm(AlgMTO), WithExtendedCriterion(false)}
	case "SRW":
		return []Option{WithAlgorithm(AlgSRW)}
	case "MHRW":
		return []Option{WithAlgorithm(AlgMHRW)}
	case "RJ":
		return []Option{WithAlgorithm(AlgRJ)}
	default:
		panic("unknown chain " + chain)
	}
}

// TestSessionCrashChild is the fault-injection subprocess for
// TestSessionKillAndRecover: it crawls the configured chain over a durable
// cache set to SIGKILL the process after N journal appends. Running it
// directly (no env) is a no-op skip.
func TestSessionCrashChild(t *testing.T) {
	dir := os.Getenv("REWIRE_SDK_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-injection child; driven by TestSessionKillAndRecover")
	}
	after, err := strconv.ParseInt(os.Getenv("REWIRE_SDK_CRASH_AFTER"), 10, 64)
	if err != nil {
		t.Fatalf("bad REWIRE_SDK_CRASH_AFTER: %v", err)
	}
	chain := os.Getenv("REWIRE_SDK_CRASH_CHAIN")

	p, err := Open(context.Background(), crashGraphURL)
	if err != nil {
		t.Fatalf("child open backend: %v", err)
	}
	if err := p.attachDurable(dir, durable.Options{
		SegmentBytes:      1 << 10,
		CompactSegments:   2,
		CrashAfterAppends: after,
	}); err != nil {
		t.Fatalf("child attach: %v", err)
	}
	opts := append(chainOptions(chain), WithSeed(11), WithStarts(0))
	sess, err := NewSession(p, opts...)
	if err != nil {
		t.Fatalf("child session: %v", err)
	}
	for range sess.Nodes(context.Background(), 1<<30) {
	}
	t.Fatalf("child survived its crawl without crashing (err=%v)", sess.Err())
}

// TestSessionKillAndRecover is the SDK-level crash harness across all four
// chains: a subprocess crawls with a durable cache and SIGKILLs itself
// mid-journal at randomized depths (mid-segment, across rotation, during
// compaction churn). The parent reopens the directory through the public
// API and asserts the recovery contract — no corruption, ledger exactly the
// recovered prefix of the reference bill, and a same-seed session replaying
// the reference trajectory byte-identically while re-billing none of the
// recovered entries.
func TestSessionKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash injection is not -short friendly")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("no test executable for re-exec")
	}
	ctx := context.Background()
	const steps = 2500

	for _, chain := range []string{"MTO", "SRW", "MHRW", "RJ"} {
		// Reference: same chain, same seed, no cache.
		ref, err := Open(ctx, crashGraphURL)
		if err != nil {
			t.Fatal(err)
		}
		opts := append(chainOptions(chain), WithSeed(11), WithStarts(0))
		refSess, err := NewSession(ref, opts...)
		if err != nil {
			t.Fatal(err)
		}
		refSamples, err := refSess.Samples(ctx, steps)
		if err != nil || len(refSamples) != steps {
			t.Fatalf("%s reference run: %d samples, err %v", chain, len(refSamples), err)
		}
		refUnique := ref.UniqueQueries()

		// Crash points are chosen inside the reference bill: the child's
		// trajectory equals the reference's (same seed, cache-transparent
		// chains), so killing it before the refUnique-th journaled fetch
		// guarantees the recovered ledger is a strict prefix of the
		// reference's demand set. Early (first segment), mid (rotation at
		// 1 KiB segments), and late (compaction churn at CompactSegments=2).
		for _, crashAfter := range []int64{5, refUnique / 3, refUnique - 10} {
			t.Run(fmt.Sprintf("%s/after=%d", chain, crashAfter), func(t *testing.T) {
				dir := t.TempDir()
				cmd := exec.Command(exe, "-test.run=TestSessionCrashChild$")
				cmd.Env = append(os.Environ(),
					"REWIRE_SDK_CRASH_DIR="+dir,
					"REWIRE_SDK_CRASH_AFTER="+strconv.FormatInt(crashAfter, 10),
					"REWIRE_SDK_CRASH_CHAIN="+chain,
				)
				out, err := cmd.CombinedOutput()
				ee, ok := err.(*exec.ExitError)
				if !ok {
					t.Fatalf("child did not die by signal: err=%v\n%s", err, out)
				}
				ws, ok := ee.Sys().(syscall.WaitStatus)
				if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
					t.Fatalf("child exit = %v, want SIGKILL\n%s", err, out)
				}

				p, err := Open(ctx, cacheURL(dir, crashGraphURL))
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				defer p.Close()
				recovered := p.UniqueQueries()
				if recovered <= 0 || recovered > refUnique {
					t.Fatalf("recovered ledger = %d, want (0, %d]", recovered, refUnique)
				}

				sess, err := NewSession(p, append(chainOptions(chain), WithSeed(11), WithStarts(0))...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sess.Samples(ctx, steps)
				if err != nil || len(got) != steps {
					t.Fatalf("resumed run: %d samples, err %v", len(got), err)
				}
				for i := range got {
					if got[i].Node != refSamples[i].Node || got[i].Weight != refSamples[i].Weight {
						t.Fatalf("resumed trajectory diverged at step %d: %+v != %+v", i, got[i], refSamples[i])
					}
				}
				if final := p.UniqueQueries(); final != refUnique {
					t.Fatalf("resumed bill = %d, want %d (recovered %d)", final, refUnique, recovered)
				}
			})
		}
	}
}
