package rewire

import (
	"errors"
	"io"

	"rewire/internal/graph"
)

// ErrSnapshotFormat reports a CSR snapshot that cannot be opened: truncated
// or corrupt header, unknown version, foreign byte order, or array bounds
// that disagree with the file size.
var ErrSnapshotFormat = graph.ErrSnapshotFormat

// WriteSnapshot serializes g in the SDK's binary CSR snapshot format — a
// versioned, checksummed header followed by the graph's offsets and neighbor
// arrays verbatim. A snapshot re-opens in O(1) via Open("snapshot:path")
// (mmap'd on linux, portable io.ReaderAt elsewhere), which is what makes
// million-node crawl state usable without an edge-list rebuild. The write
// streams in constant memory.
//
// The workflow: crawl (or generate) once, WriteSnapshot, then every later
// session does Open(ctx, "snapshot:crawl.csr") and walks immediately.
func WriteSnapshot(w io.Writer, g *Graph) error {
	if g == nil {
		return errors.New("rewire: WriteSnapshot of nil graph")
	}
	return g.WriteSnapshot(w)
}

// WriteSnapshotFile writes g's snapshot to path (0644, truncating).
func WriteSnapshotFile(path string, g *Graph) error {
	if g == nil {
		return errors.New("rewire: WriteSnapshotFile of nil graph")
	}
	return g.WriteSnapshotFile(path)
}
