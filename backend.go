package rewire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"rewire/internal/osn"
)

// Backend is the minimal driver contract of the SDK: one context-first,
// batch-capable fetch. Everything else the sampling stack provides — the
// sharded response cache, per-user singleflight, the paper's unique-query
// demand billing, budgets, and the speculative prefetch pool — is layered on
// top by the Provider returned from Open or BackendSource, identically for
// every backend: a simulated service, a live HTTP endpoint, a read-only CSR
// snapshot, or anything a third party registers via Register.
//
// Contract:
//
//   - Fetch returns exactly one neighbor list per requested id, in input
//     order, or a non-nil error for the batch as a whole (no partial
//     results). An empty list is a valid answer for an isolated user.
//   - An id outside the backend's user space fails with an error matching
//     ErrNoSuchUser (errors.Is).
//   - Fetch honors ctx: cancellation or deadline expiry aborts the in-flight
//     round-trip and returns the context's error.
//   - Returned slices pass ownership to the caller: the backend must not
//     retain or mutate them (they are cached forever client-side).
//   - Fetch must be safe for concurrent use.
//
// Optional capabilities — UserCounter, Hinter, RateLimited, io.Closer — are
// discovered by interface probing that follows Unwrap chains, so middleware
// wrappers (WithRetry, WithRateLimit, WithMetrics) never hide them.
type Backend interface {
	Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error)
}

// UserCounter is the optional Backend capability of publishing the total
// user count — the figure the paper notes real providers publish for
// advertising purposes, and the one Random Jump needs for its ID space.
// Sessions over a backend without it cannot spread starts and must pin them
// with WithStarts.
type UserCounter interface {
	NumUsers() int
}

// Hinter is the optional Backend capability of accepting advisory prefetch
// hints: ids the sampler expects to demand soon. The provider's speculative
// pool forwards every hint it accepts, so a backend can warm its own side of
// the fetch (fault pages in, pipeline a request). Hint must not block, must
// be safe for concurrent use, and carries no obligation.
type Hinter interface {
	Hint(ids []NodeID)
}

// RateLimitInfo is provider-published quota feedback, typically mirrored
// from X-RateLimit-* response headers.
type RateLimitInfo struct {
	// Limit and Remaining are the window quota and what is left of it.
	Limit, Remaining int
	// Reset is when the window replenishes (zero when unknown).
	Reset time.Time
}

// RateLimited is the optional Backend capability of reporting the provider's
// live quota state. ok is false until feedback has been observed.
type RateLimited interface {
	RateLimit() (RateLimitInfo, bool)
}

// BackendUnwrapper is implemented by middleware that wraps another Backend.
// Capability probing (and Provider.Close) follows the chain, sql-driver
// style, so composition never hides an inner backend's abilities.
type BackendUnwrapper interface {
	Unwrap() Backend
}

// backendAs resolves capability T anywhere on b's Unwrap chain, outermost
// first.
func backendAs[T any](b Backend) (T, bool) {
	for b != nil {
		if t, ok := b.(T); ok {
			return t, true
		}
		u, ok := b.(BackendUnwrapper)
		if !ok {
			break
		}
		b = u.Unwrap()
	}
	var zero T
	return zero, false
}

// osnBackend adapts a public Backend to the internal client contract,
// resolving capabilities through the Unwrap chain once at construction.
// The Hinter capability is surfaced by a distinct wrapper type
// (hintingOSNBackend) rather than an always-present no-op method, so the
// client's probe-once `be.(Hinter)` stays false — and the prefetch path
// allocation-free — for backends without one.
type osnBackend struct {
	b     Backend
	users func() int
}

func newOSNBackend(b Backend) osn.Backend {
	a := &osnBackend{b: b}
	if uc, ok := backendAs[UserCounter](b); ok {
		a.users = uc.NumUsers
	}
	if h, ok := backendAs[Hinter](b); ok {
		return &hintingOSNBackend{osnBackend: a, hint: h.Hint}
	}
	return a
}

func (a *osnBackend) Fetch(ctx context.Context, ids []NodeID) ([]osn.Response, error) {
	lists, err := a.b.Fetch(ctx, ids)
	if err != nil {
		return nil, err
	}
	if len(lists) != len(ids) {
		return nil, fmt.Errorf("rewire: backend returned %d lists for %d ids", len(lists), len(ids))
	}
	out := make([]osn.Response, len(ids))
	for i, v := range ids {
		out[i] = osn.Response{User: v, Neighbors: lists[i]}
	}
	return out, nil
}

func (a *osnBackend) NumUsers() int {
	if a.users == nil {
		return 0
	}
	return a.users()
}

// hintingOSNBackend is the adapter variant for backends with a Hinter on
// their chain.
type hintingOSNBackend struct {
	*osnBackend
	hint func(ids []NodeID)
}

func (a *hintingOSNBackend) Hint(ids []NodeID) { a.hint(ids) }

// closeBackend closes every io.Closer on b's Unwrap chain, returning the
// first error.
func closeBackend(b Backend) error {
	var first error
	for b != nil {
		if c, ok := b.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
		u, ok := b.(BackendUnwrapper)
		if !ok {
			break
		}
		b = u.Unwrap()
	}
	return first
}

// RetryOptions tunes WithRetry. Zero values select the defaults noted on
// each field.
type RetryOptions struct {
	// MaxAttempts bounds tries per Fetch, first attempt included (default 4).
	MaxAttempts int
	// BaseDelay and MaxDelay bound the exponential backoff: the delay before
	// retry n is min(MaxDelay, BaseDelay·2ⁿ⁻¹) with bounded jitter in
	// [delay/2, delay). Defaults 100ms and 5s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// WithRetry wraps b with bounded-jitter exponential-backoff retries. Context
// errors and ErrNoSuchUser are never retried; anything else is, unless it
// declares itself permanent via `interface{ Temporary() bool }` (as the HTTP
// driver's status errors do). Drivers with built-in retry (http) generally
// do not need this wrapper — it exists for third-party backends that fail
// transiently without one.
func WithRetry(b Backend, o RetryOptions) Backend {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 100 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 5 * time.Second
	}
	return &retryBackend{inner: b, partial: partialFetchFunc(b), opt: o}
}

type retryBackend struct {
	inner   Backend
	partial func(context.Context, []NodeID) ([][]NodeID, []error, error)
	opt     RetryOptions
}

func (r *retryBackend) Unwrap() Backend { return r.inner }

func (r *retryBackend) Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	var lastErr error
	for attempt := 1; attempt <= r.opt.MaxAttempts; attempt++ {
		if err := r.wait(ctx, attempt); err != nil {
			return nil, err
		}
		lists, err := r.inner.Fetch(ctx, ids)
		if err == nil {
			return lists, nil
		}
		if stop, serr := r.sieve(ctx, err); stop {
			return nil, serr
		}
		lastErr = err
	}
	return nil, fmt.Errorf("rewire: %d fetch attempts exhausted: %w", r.opt.MaxAttempts, lastErr)
}

// FetchPartial applies the same retry policy to the per-id fetch path, so a
// coalescing dispatcher probing through this wrapper still gets retries.
// Only whole-batch failures are retried; per-id errors are final answers.
func (r *retryBackend) FetchPartial(ctx context.Context, ids []NodeID) ([][]NodeID, []error, error) {
	var lastErr error
	for attempt := 1; attempt <= r.opt.MaxAttempts; attempt++ {
		if err := r.wait(ctx, attempt); err != nil {
			return nil, nil, err
		}
		lists, errs, err := r.partial(ctx, ids)
		if err == nil {
			return lists, errs, nil
		}
		if stop, serr := r.sieve(ctx, err); stop {
			return nil, nil, serr
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("rewire: %d fetch attempts exhausted: %w", r.opt.MaxAttempts, lastErr)
}

// wait sleeps out the backoff before attempt n (no-op for the first).
func (r *retryBackend) wait(ctx context.Context, attempt int) error {
	if attempt <= 1 {
		return nil
	}
	d := r.opt.BaseDelay << (attempt - 2)
	if d > r.opt.MaxDelay || d <= 0 {
		d = r.opt.MaxDelay
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// sieve classifies a Fetch error: stop (with the error to return) or retry.
func (r *retryBackend) sieve(ctx context.Context, err error) (bool, error) {
	if ctx.Err() != nil {
		return true, ctx.Err()
	}
	if errors.Is(err, ErrNoSuchUser) {
		return true, err
	}
	var tmp interface{ Temporary() bool }
	if errors.As(err, &tmp) && !tmp.Temporary() {
		return true, err
	}
	return false, nil
}

// WithRateLimit wraps b with a client-side token bucket: at most rps
// fetches per second with the given burst capacity (burst < 1 is raised to
// 1). Use it to stay politely inside a provider's published quota instead of
// bouncing off 429s. A Fetch blocked on the bucket honors ctx.
func WithRateLimit(b Backend, rps float64, burst int) Backend {
	if burst < 1 {
		burst = 1
	}
	if rps <= 0 {
		return b
	}
	return &rateLimitBackend{
		inner:   b,
		partial: partialFetchFunc(b),
		rps:     rps,
		burst:   float64(burst),
		tokens:  float64(burst),
		last:    time.Now(),
	}
}

type rateLimitBackend struct {
	inner   Backend
	partial func(context.Context, []NodeID) ([][]NodeID, []error, error)
	rps     float64
	burst   float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (r *rateLimitBackend) Unwrap() Backend { return r.inner }

// take reserves one token, returning how long the caller must wait for it.
func (r *rateLimitBackend) take(now time.Time) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tokens += now.Sub(r.last).Seconds() * r.rps
	if r.tokens > r.burst {
		r.tokens = r.burst
	}
	r.last = now
	r.tokens--
	if r.tokens >= 0 {
		return 0
	}
	return time.Duration(-r.tokens / r.rps * float64(time.Second))
}

func (r *rateLimitBackend) Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	if err := r.block(ctx); err != nil {
		return nil, err
	}
	return r.inner.Fetch(ctx, ids)
}

// FetchPartial charges the bucket exactly like Fetch — one token per
// round-trip, however many ids it coalesces — so a dispatcher probing through
// this wrapper cannot sidestep the limiter.
func (r *rateLimitBackend) FetchPartial(ctx context.Context, ids []NodeID) ([][]NodeID, []error, error) {
	if err := r.block(ctx); err != nil {
		return nil, nil, err
	}
	return r.partial(ctx, ids)
}

// block waits out the token reservation, honoring ctx.
func (r *rateLimitBackend) block(ctx context.Context) error {
	if wait := r.take(time.Now()); wait > 0 {
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			// Refund the reservation: no request reached the backend, so a
			// cancelled wait must not eat quota (repeated cancellations would
			// otherwise throttle below the configured rate forever).
			r.mu.Lock()
			r.tokens++
			r.mu.Unlock()
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

// BackendMetrics accumulates fetch telemetry for a WithMetrics wrapper. All
// counters are atomic; one value may be shared by several wrapped backends.
type BackendMetrics struct {
	fetches  atomic.Int64
	ids      atomic.Int64
	failures atomic.Int64
	nanos    atomic.Int64
	// sizeBuckets is a power-of-two batch-size histogram: bucket 0 counts
	// single-id fetches, bucket i fetches of (2^(i-1), 2^i] ids, the last
	// bucket everything larger. It makes coalescing visible: a dispatcher
	// doing its job moves mass out of bucket 0.
	sizeBuckets [8]atomic.Int64
}

// MetricsSnapshot is a point-in-time copy of a BackendMetrics.
type MetricsSnapshot struct {
	// Fetches and IDs count Fetch calls and the ids they carried; Failures
	// counts calls that returned an error.
	Fetches, IDs, Failures int64
	// Total is the summed wall-clock of all Fetch calls.
	Total time.Duration
	// BatchSizeBuckets is a power-of-two histogram of ids per Fetch:
	// bucket 0 counts single-id calls, bucket i calls of (2^(i-1), 2^i] ids
	// (2, ≤4, ≤8, ≤16, ≤32, ≤64), the last bucket everything above 64.
	BatchSizeBuckets [8]int64
}

// Snapshot returns the current counters.
func (m *BackendMetrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Fetches:  m.fetches.Load(),
		IDs:      m.ids.Load(),
		Failures: m.failures.Load(),
		Total:    time.Duration(m.nanos.Load()),
	}
	for i := range m.sizeBuckets {
		s.BatchSizeBuckets[i] = m.sizeBuckets[i].Load()
	}
	return s
}

// WithMetrics wraps b so every Fetch updates m. Nil m allocates a fresh one;
// read it back via the returned backend's Metrics method (probe with
// backend.(interface{ Metrics() *BackendMetrics })) or keep your own handle.
func WithMetrics(b Backend, m *BackendMetrics) Backend {
	if m == nil {
		m = &BackendMetrics{}
	}
	return &metricsBackend{inner: b, partial: partialFetchFunc(b), m: m}
}

type metricsBackend struct {
	inner   Backend
	partial func(context.Context, []NodeID) ([][]NodeID, []error, error)
	m       *BackendMetrics
}

func (mb *metricsBackend) Unwrap() Backend          { return mb.inner }
func (mb *metricsBackend) Metrics() *BackendMetrics { return mb.m }

func (mb *metricsBackend) Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	start := time.Now()
	lists, err := mb.inner.Fetch(ctx, ids)
	mb.m.fetches.Add(1)
	mb.m.ids.Add(int64(len(ids)))
	if len(ids) > 0 {
		mb.m.sizeBuckets[batchSizeBucket(len(ids))].Add(1)
	}
	mb.m.nanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		mb.m.failures.Add(1)
	}
	return lists, err
}

// FetchPartial meters the per-id fetch path identically to Fetch, so batches
// a coalescing dispatcher sends through this wrapper land in the counters
// and the size histogram. Only a whole-batch error counts as a failure.
func (mb *metricsBackend) FetchPartial(ctx context.Context, ids []NodeID) ([][]NodeID, []error, error) {
	start := time.Now()
	lists, errs, err := mb.partial(ctx, ids)
	mb.m.fetches.Add(1)
	mb.m.ids.Add(int64(len(ids)))
	if len(ids) > 0 {
		mb.m.sizeBuckets[batchSizeBucket(len(ids))].Add(1)
	}
	mb.m.nanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		mb.m.failures.Add(1)
	}
	return lists, errs, err
}
