package rewire_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"rewire"
	"rewire/internal/graph"
	"rewire/internal/httpsrc"
)

// conformanceGraph is the reference topology every driver serves in the
// cross-backend suite.
func conformanceGraph(t *testing.T) *rewire.Graph {
	t.Helper()
	g, err := rewire.SocialGraph(120, 480, 5)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// conformanceTargets returns one Open URL per registered built-in driver,
// all serving conformanceGraph's topology. Cleanup is hooked into t.
func conformanceTargets(t *testing.T, g *rewire.Graph) map[string]string {
	t.Helper()
	srv := httptest.NewServer(httpsrc.Handler(toInternal(g), httpsrc.ServerOptions{}))
	t.Cleanup(srv.Close)

	snapPath := filepath.Join(t.TempDir(), "conformance.csr")
	if err := rewire.WriteSnapshotFile(snapPath, g); err != nil {
		t.Fatal(err)
	}

	return map[string]string{
		"mem":               "mem:social?nodes=120&edges=480&seed=5",
		"sim":               "sim:social?nodes=120&edges=480&seed=5",
		"http":              srv.URL + "?timeout=5s&backoff=1ms&max_backoff=10ms",
		"snapshot":          "snapshot:" + snapPath,
		"snapshot-readerat": "snapshot:" + snapPath + "?mode=readerat",
	}
}

// toInternal converts the public alias (identical underlying type).
func toInternal(g *rewire.Graph) *graph.Graph { return g }

// TestBackendConformance runs the shared driver conformance suite against
// every built-in scheme: identical topology answers, consistent
// ErrNoSuchUser behavior, exact unique-query billing, defensive copies, and
// a working Session end to end. Anything registering a third-party driver
// should pass the same checks.
func TestBackendConformance(t *testing.T) {
	ctx := context.Background()
	g := conformanceGraph(t)
	for name, target := range conformanceTargets(t, g) {
		t.Run(name, func(t *testing.T) {
			p, err := rewire.Open(ctx, target)
			if err != nil {
				t.Fatalf("Open(%q): %v", target, err)
			}
			defer p.Close()

			if n := p.NumUsers(); n != g.NumNodes() {
				t.Fatalf("NumUsers = %d, want %d", n, g.NumNodes())
			}

			// Topology equivalence on a sample of nodes, via every read path.
			for _, v := range []rewire.NodeID{0, 1, 7, rewire.NodeID(g.NumNodes() - 1)} {
				want := g.Neighbors(v)
				got, err := p.NeighborsContext(ctx, v)
				if err != nil {
					t.Fatalf("NeighborsContext(%d): %v", v, err)
				}
				if !slices.Equal(got, want) {
					t.Fatalf("NeighborsContext(%d) = %v, want %v", v, got, want)
				}
				if d := p.Degree(v); d != len(want) {
					t.Fatalf("Degree(%d) = %d, want %d", v, d, len(want))
				}
				if nb := p.Neighbors(v); !slices.Equal(nb, want) {
					t.Fatalf("Neighbors(%d) = %v, want %v", v, nb, want)
				}
			}

			// Unknown ids fail with ErrNoSuchUser on every backend.
			for _, v := range []rewire.NodeID{-1, rewire.NodeID(g.NumNodes()), 1 << 29} {
				if _, err := p.NeighborsContext(ctx, v); !errors.Is(err, rewire.ErrNoSuchUser) {
					t.Fatalf("NeighborsContext(%d) err = %v, want ErrNoSuchUser", v, err)
				}
			}
			if _, err := p.QueryBatch(ctx, []rewire.NodeID{2, rewire.NodeID(g.NumNodes())}); !errors.Is(err, rewire.ErrNoSuchUser) {
				t.Fatalf("QueryBatch with unknown id err = %v, want ErrNoSuchUser", err)
			}

			// A cancelled context surfaces its error, not a silent nil list.
			cctx, cancel := context.WithCancel(ctx)
			cancel()
			if _, err := p.NeighborsContext(cctx, 3); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled NeighborsContext err = %v, want context.Canceled", err)
			}

			// Billing: re-reading the sampled nodes above cost one unique query
			// each, batches dedupe, and the bill equals the cache size.
			before := p.UniqueQueries()
			if _, err := p.QueryBatch(ctx, []rewire.NodeID{0, 1, 7, 0, 1, 7}); err != nil {
				t.Fatalf("QueryBatch: %v", err)
			}
			if after := p.UniqueQueries(); after != before {
				t.Fatalf("re-querying cached nodes billed %d new queries", after-before)
			}
			if int64(p.CacheSize()) != p.UniqueQueries() {
				t.Fatalf("cache size %d != unique queries %d", p.CacheSize(), p.UniqueQueries())
			}

			// Defensive copies: mutating a returned list must not poison the
			// cache.
			nbrs, err := p.NeighborsContext(ctx, 7)
			if err != nil {
				t.Fatal(err)
			}
			for i := range nbrs {
				nbrs[i] = -42
			}
			if again, _ := p.NeighborsContext(ctx, 7); !slices.Equal(again, g.Neighbors(7)) {
				t.Fatal("caller mutation leaked into the provider cache")
			}

			// End to end: a short SRW fleet session over the provider.
			s, err := rewire.NewSession(p,
				rewire.WithAlgorithm(rewire.AlgSRW),
				rewire.WithFleet(2),
				rewire.WithSeed(3),
				rewire.WithPartitionedBudget(true),
			)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			samples, err := s.Samples(ctx, 50)
			if err != nil {
				t.Fatalf("Samples: %v", err)
			}
			if len(samples) != 50 {
				t.Fatalf("drew %d samples, want 50", len(samples))
			}
			for _, smp := range samples {
				if smp.Node < 0 || int(smp.Node) >= g.NumNodes() {
					t.Fatalf("sample node %d outside the graph", smp.Node)
				}
			}
		})
	}
}

// TestConformanceTrajectoriesAgree pins that a fixed-seed partitioned walk
// produces the same trajectory over every backend — the topology is
// identical, so the walk must be too.
func TestConformanceTrajectoriesAgree(t *testing.T) {
	ctx := context.Background()
	g := conformanceGraph(t)
	targets := conformanceTargets(t, g)
	var want []rewire.Sample
	var wantBill int64
	for _, name := range []string{"mem", "sim", "http", "snapshot", "snapshot-readerat"} {
		target := targets[name]
		p, err := rewire.Open(ctx, target)
		if err != nil {
			t.Fatalf("Open(%q): %v", target, err)
		}
		s, err := rewire.NewSession(p,
			rewire.WithAlgorithm(rewire.AlgSRW),
			rewire.WithSeed(11),
		)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Samples(ctx, 120)
		if err != nil {
			t.Fatal(err)
		}
		bill := p.UniqueQueries()
		p.Close()
		if want == nil {
			want, wantBill = got, bill
			continue
		}
		if !slices.Equal(got, want) {
			t.Fatalf("%s: trajectory diverged from the reference backend", name)
		}
		if bill != wantBill {
			t.Fatalf("%s: unique-query bill %d, want %d", name, bill, wantBill)
		}
	}
}

// TestConformanceBatchingInvariance pins the coalescing middleware's core
// contract: for a fixed-seed partitioned fleet, wrapping any backend in
// WithBatching changes how many wires the demand rides — never the
// trajectory, the global bill, or any tenant's bill. Batched and unbatched
// runs over the same scheme must agree byte for byte.
func TestConformanceBatchingInvariance(t *testing.T) {
	ctx := context.Background()
	g := conformanceGraph(t)
	for name, target := range conformanceTargets(t, g) {
		t.Run(name, func(t *testing.T) {
			type outcome struct {
				samples []rewire.Sample
				bill    int64
				tenants map[string]rewire.TenantBill
			}
			run := func(batched bool) outcome {
				be, err := rewire.OpenBackend(ctx, target)
				if err != nil {
					t.Fatalf("OpenBackend(%q): %v", target, err)
				}
				if batched {
					be = rewire.WithBatching(be, rewire.BatchingOptions{
						MaxBatch: 8,
						MaxWait:  time.Millisecond,
					})
				}
				p := rewire.BackendSource(be)
				defer p.Close()
				s, err := rewire.NewSession(p,
					rewire.WithAlgorithm(rewire.AlgSRW),
					rewire.WithFleet(4),
					rewire.WithSeed(11),
					rewire.WithPartitionedBudget(true),
				)
				if err != nil {
					t.Fatal(err)
				}
				samples, err := s.Samples(rewire.WithTenant(ctx, "conformance"), 160)
				if err != nil {
					t.Fatal(err)
				}
				return outcome{samples: samples, bill: p.UniqueQueries(), tenants: p.TenantBills()}
			}
			plain := run(false)
			batched := run(true)
			// The fleet merge order is documented nondeterministic; each
			// member's own subsequence is the trajectory that must not move.
			perWalker := func(samples []rewire.Sample) map[int][]rewire.Sample {
				m := make(map[int][]rewire.Sample)
				for _, smp := range samples {
					m[smp.Walker] = append(m[smp.Walker], smp)
				}
				return m
			}
			got, want := perWalker(batched.samples), perWalker(plain.samples)
			if len(got) != len(want) {
				t.Fatalf("coalescing changed the walker set: %d vs %d", len(got), len(want))
			}
			for w, traj := range want {
				if !slices.Equal(got[w], traj) {
					t.Fatalf("coalescing changed walker %d's trajectory", w)
				}
			}
			if batched.bill != plain.bill {
				t.Fatalf("coalescing changed the bill: %d batched vs %d unbatched", batched.bill, plain.bill)
			}
			if len(batched.tenants) != len(plain.tenants) {
				t.Fatalf("tenant sets diverged: %v vs %v", batched.tenants, plain.tenants)
			}
			for tenant, want := range plain.tenants {
				if got := batched.tenants[tenant]; got != want {
					t.Fatalf("tenant %q billed %+v batched, %+v unbatched", tenant, got, want)
				}
			}
		})
	}
}
