package rewire_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"rewire"
)

func TestSessionStreamDrainsBudget(t *testing.T) {
	g := rewire.Barbell(11)
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithFleet(4), rewire.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for smp, err := range s.Stream(context.Background(), 500) {
		if err != nil {
			t.Fatalf("unexpected stream error: %v", err)
		}
		if smp.Node < 0 || int(smp.Node) >= g.NumNodes() {
			t.Fatalf("sample node %d out of range", smp.Node)
		}
		if smp.Walker < 0 || smp.Walker >= 4 {
			t.Fatalf("sample walker %d out of range", smp.Walker)
		}
		n++
	}
	if n != 500 {
		t.Fatalf("drained %d samples, want 500", n)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("clean drain left Err = %v", err)
	}
	if removed, _ := s.Rewired(); removed == 0 {
		t.Fatal("MTO session performed no removals on the barbell")
	}
}

func TestSessionNodesIteratorAndReuse(t *testing.T) {
	g := rewire.Barbell(8)
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithAlgorithm(rewire.AlgSRW))
	if err != nil {
		t.Fatal(err)
	}
	for range 3 { // sessions serialize runs and stay reusable
		n := 0
		for v := range s.Nodes(context.Background(), 100) {
			_ = v
			n++
			if n == 50 {
				break // breaking mid-iteration must clean up walker goroutines
			}
		}
		if s.Err() != nil {
			t.Fatalf("Err after clean break: %v", s.Err())
		}
	}
}

func TestSessionErrRecordsDeadOnArrivalContext(t *testing.T) {
	g := rewire.Barbell(5)
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithAlgorithm(rewire.AlgSRW))
	if err != nil {
		t.Fatal(err)
	}
	// A clean run first, so a stale nil cannot mask the next run's abort.
	if _, err := s.Samples(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	for range s.Nodes(ctx, 10) {
		n++
	}
	if n != 0 {
		t.Fatalf("dead context yielded %d nodes", n)
	}
	if !errors.Is(s.Err(), context.Canceled) {
		t.Fatalf("Err() = %v after dead-on-arrival run, want context.Canceled", s.Err())
	}
}

func TestSessionPartitionedReproducible(t *testing.T) {
	// SRW over a read-only source: with the budget partitioned, each
	// member's trajectory depends only on its own RNG stream. (MTO fleet
	// members share a mutating overlay, so their trajectories legitimately
	// depend on goroutine interleaving even when partitioned.)
	run := func() [][]rewire.NodeID {
		g := rewire.Barbell(9)
		s, err := rewire.NewSession(rewire.GraphSource(g),
			rewire.WithAlgorithm(rewire.AlgSRW),
			rewire.WithFleet(2), rewire.WithSeed(7), rewire.WithPartitionedBudget(true))
		if err != nil {
			t.Fatal(err)
		}
		per := make([][]rewire.NodeID, 2)
		for smp, err := range s.Stream(context.Background(), 400) {
			if err != nil {
				t.Fatal(err)
			}
			per[smp.Walker] = append(per[smp.Walker], smp.Node)
		}
		return per
	}
	a, b := run(), run()
	for w := range a {
		if len(a[w]) != len(b[w]) {
			t.Fatalf("walker %d: %d vs %d samples", w, len(a[w]), len(b[w]))
		}
		for i := range a[w] {
			if a[w][i] != b[w][i] {
				t.Fatalf("walker %d diverges at step %d: %d vs %d", w, i, a[w][i], b[w][i])
			}
		}
	}
}

func TestSessionEstimateOverProvider(t *testing.T) {
	g, err := rewire.SocialGraph(600, 2400, 11)
	if err != nil {
		t.Fatal(err)
	}
	truth := g.AverageDegree()
	for _, alg := range []rewire.Algorithm{rewire.AlgMTO, rewire.AlgSRW} {
		osn := rewire.Simulate(g, rewire.Limits{})
		s, err := rewire.NewSession(osn, rewire.WithAlgorithm(alg), rewire.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Estimate(context.Background(), rewire.AvgDegree(),
			rewire.EstimateOptions{Samples: 4000, BurnIn: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Samples != 4000 {
			t.Fatalf("%v: recorded %d samples, want 4000", alg, res.Samples)
		}
		if rel := math.Abs(res.Estimate-truth) / truth; rel > 0.35 {
			t.Fatalf("%v: estimate %.3f vs truth %.3f (rel err %.3f)", alg, res.Estimate, truth, rel)
		}
		if res.UniqueQueries <= 0 || res.UniqueQueries != osn.UniqueQueries() {
			t.Fatalf("%v: result cost %d, provider ledger %d", alg, res.UniqueQueries, osn.UniqueQueries())
		}
	}
}

func TestSessionValidation(t *testing.T) {
	g := rewire.Barbell(5)
	src := rewire.GraphSource(g)
	if _, err := rewire.NewSession(src, rewire.WithFleet(0)); err == nil {
		t.Fatal("WithFleet(0) accepted")
	}
	if _, err := rewire.NewSession(src, rewire.WithFleet(3), rewire.WithStarts(1)); err == nil {
		t.Fatal("fleet/starts mismatch accepted")
	}
	if _, err := rewire.NewSession(src, rewire.WithAlgorithm(rewire.Algorithm(99))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := rewire.NewSession(src, rewire.WithStarts(1000)); !errors.Is(err, rewire.ErrNoSuchUser) {
		t.Fatalf("out-of-range start: got %v, want ErrNoSuchUser", err)
	}
	if _, err := rewire.NewSession(src, rewire.WithJumpProbability(1.5)); err == nil {
		t.Fatal("jump probability 1.5 accepted")
	}
}

func TestSessionDisconnectedStart(t *testing.T) {
	g, err := rewire.NewGraph(3, [][2]rewire.NodeID{{0, 1}}) // node 2 is isolated
	if err != nil {
		t.Fatal(err)
	}
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithStarts(2))
	if err != nil {
		t.Fatal(err) // construction is query-free; the first run reports it
	}
	_, err = s.Samples(context.Background(), 10)
	if !errors.Is(err, rewire.ErrDisconnected) {
		t.Fatalf("got %v, want ErrDisconnected", err)
	}
}

func TestSessionSerializesRuns(t *testing.T) {
	g := rewire.Barbell(6)
	s, err := rewire.NewSession(rewire.GraphSource(g))
	if err != nil {
		t.Fatal(err)
	}
	for smp, err := range s.Stream(context.Background(), 5) {
		_ = smp
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Samples(context.Background(), 1); !errors.Is(err, rewire.ErrActiveStream) {
			t.Fatalf("nested run: got %v, want ErrActiveStream", err)
		}
		break
	}
	// After the (broken) stream the session is free again.
	if _, err := s.Samples(context.Background(), 5); err != nil {
		t.Fatalf("session not reusable after break: %v", err)
	}
}

func TestSessionBudgetExhaustionIsResumable(t *testing.T) {
	g, err := rewire.SocialGraph(400, 1600, 9)
	if err != nil {
		t.Fatal(err)
	}
	osn := rewire.Simulate(g, rewire.Limits{})
	osn.SetBudget(40)
	s, err := rewire.NewSession(osn, rewire.WithFleet(2), rewire.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Samples(context.Background(), 100000)
	if !errors.Is(err, rewire.ErrBudgetExhausted) {
		t.Fatalf("got %v, want ErrBudgetExhausted", err)
	}
	if osn.UniqueQueries() > 40 {
		t.Fatalf("billed %d unique queries past the budget of 40", osn.UniqueQueries())
	}
	// Raise the budget and resume: walkers continue from their positions.
	osn.SetBudget(0)
	more, err := s.Samples(context.Background(), 200)
	if err != nil {
		t.Fatalf("resume after budget raise: %v", err)
	}
	if len(got)+len(more) == 0 {
		t.Fatal("no samples drawn across exhaustion and resume")
	}
}

func TestMaterializeOverlayAndConductance(t *testing.T) {
	g := rewire.Barbell(11)
	phi, err := rewire.Conductance(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Samples(context.Background(), 3000); err != nil {
		t.Fatal(err)
	}
	ov, err := s.MaterializeOverlay()
	if err != nil {
		t.Fatal(err)
	}
	phiStar, err := rewire.Conductance(ov)
	if err != nil {
		t.Fatal(err)
	}
	if phiStar < phi {
		t.Fatalf("overlay conductance %.4f below original %.4f", phiStar, phi)
	}
	// Non-MTO sessions have no overlay.
	srw, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithAlgorithm(rewire.AlgSRW))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srw.MaterializeOverlay(); !errors.Is(err, rewire.ErrNoOverlay) {
		t.Fatalf("got %v, want ErrNoOverlay", err)
	}
}
