// Command mto-bench reproduces the paper's tables and figures. Each
// experiment prints a paper-shaped table; -full selects paper scale
// (default: quick scale for smoke runs).
//
// Usage:
//
//	mto-bench -exp all -full
//	mto-bench -exp fig7 -dataset "Slashdot B" -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"rewire/internal/exp"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment: table1|running|fig7|fig8|fig9|fig10|fig11|theorem6|fleet|all")
		full    = flag.Bool("full", false, "run at full paper scale (slower)")
		seed    = flag.Uint64("seed", 1, "master random seed")
		dataset = flag.String("dataset", "", "restrict fig7 to one dataset (default: all three)")
	)
	flag.Parse()
	if err := run(*which, *full, *seed, *dataset); err != nil {
		fmt.Fprintln(os.Stderr, "mto-bench:", err)
		os.Exit(1)
	}
}

func run(which string, full bool, seed uint64, dataset string) error {
	out := os.Stdout
	section := func(title string) {
		fmt.Fprintf(out, "\n=== %s ===\n\n", title)
	}
	all := which == "all"

	if all || which == "table1" {
		section("Table I — datasets")
		exp.Table1(full, diameterSamples(full), seed).Render(out)
	}
	if all || which == "running" {
		section("Running example — barbell rewiring (§II–III)")
		res, err := exp.RunningExample(seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "theorem6" {
		section("Theorem 6 — latent-space removal bound (§IV-B)")
		cfg := exp.QuickTheorem6Config()
		if full {
			cfg = exp.DefaultTheorem6Config()
		}
		res, err := exp.Theorem6(cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fig7" {
		cfg := exp.QuickFig7Config()
		if full {
			cfg = exp.DefaultFig7Config()
		}
		for _, ds := range exp.Datasets(full) {
			if dataset != "" && ds.Name != dataset {
				continue
			}
			section(fmt.Sprintf("Fig 7 — bias vs query cost (%s)", ds.Name))
			res, err := exp.Fig7(ds, cfg, seed)
			if err != nil {
				return err
			}
			res.Render(out)
		}
	}
	if all || which == "fig8" {
		section("Fig 8 — KL divergence and query cost, SRW vs MTO")
		cfg := exp.QuickFig8Config()
		if full {
			cfg = exp.DefaultFig8Config()
		}
		res, err := exp.Fig8(exp.Datasets(full), cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fig9" {
		section("Fig 9 — Geweke threshold sweep (Slashdot B)")
		cfg := exp.QuickFig9Config()
		if full {
			cfg = exp.DefaultFig9Config()
		}
		ds := exp.DatasetByName("Slashdot B", full)
		res, err := exp.Fig9(*ds, cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fig10" {
		section("Fig 10 — latent-space mixing times")
		cfg := exp.QuickFig10Config()
		if full {
			cfg = exp.DefaultFig10Config()
		}
		res, err := exp.Fig10(cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fig11" {
		section("Fig 11 — Google Plus stand-in")
		cfg := exp.QuickFig11Config()
		if full {
			cfg = exp.DefaultFig11Config()
		}
		res, err := exp.Fig11(full, cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fleet" {
		section("Fleet — concurrent walkers vs sequential round-robin")
		cfg := exp.QuickFleetConfig()
		if full {
			cfg = exp.DefaultFleetConfig()
		}
		target := exp.Datasets(full)[0]
		if dataset != "" {
			d := exp.DatasetByName(dataset, full)
			if d == nil {
				return fmt.Errorf("unknown dataset %q", dataset)
			}
			target = *d
		}
		exp.FleetScaling(target, cfg, seed).Render(out)
	}
	if !all {
		switch which {
		case "table1", "running", "fig7", "fig8", "fig9", "fig10", "fig11", "theorem6", "fleet":
		default:
			return fmt.Errorf("unknown experiment %q", which)
		}
	}
	return nil
}

func diameterSamples(full bool) int {
	if full {
		return 200
	}
	return 60
}
