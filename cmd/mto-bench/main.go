// Command mto-bench reproduces the paper's tables and figures. Each
// experiment prints a paper-shaped table; -full selects paper scale
// (default: quick scale for smoke runs).
//
// Usage:
//
//	mto-bench -exp all -full
//	mto-bench -exp fig7 -dataset "Slashdot B" -seed 7
//	mto-bench -exp prefetch -prefetch frontier -prefetch-depth 2
//	mto-bench -exp bench -json bench/run.json   # CI bench-gate input
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"rewire/internal/benchcmp"
	"rewire/internal/exp"
)

// prefetchFlags carries the -prefetch* tuning into the prefetch experiment.
type prefetchFlags struct {
	strategy string
	depth    int
	workers  int
	topK     int
}

func main() {
	var (
		which    = flag.String("exp", "all", "experiment: table1|running|fig7|fig8|fig9|fig10|fig11|theorem6|fleet|prefetch|contention|batching|all, or bench/memsmoke/snapcold/warmstart (standalone CI workloads, not part of all)")
		full     = flag.Bool("full", false, "run at full paper scale (slower)")
		seed     = flag.Uint64("seed", 1, "master random seed")
		dataset  = flag.String("dataset", "", "restrict fig7 to one dataset (default: all three)")
		jsonOut  = flag.String("json", "", "write machine-readable results (only with -exp bench)")
		strategy = flag.String("prefetch", "all", "prefetch strategies for -exp prefetch: all|none|nexthop|frontier")
		depth    = flag.Int("prefetch-depth", 0, "prefetch pool recursive lookahead depth (0 = config default)")
		workers  = flag.Int("prefetch-workers", 0, "prefetch pool workers (0 = config default)")
		topK     = flag.Int("prefetch-topk", 0, "frontier strategy width (0 = config default)")
	)
	flag.Parse()
	pf := prefetchFlags{strategy: *strategy, depth: *depth, workers: *workers, topK: *topK}
	if err := run(*which, *full, *seed, *dataset, *jsonOut, pf); err != nil {
		fmt.Fprintln(os.Stderr, "mto-bench:", err)
		os.Exit(1)
	}
}

func run(which string, full bool, seed uint64, dataset, jsonOut string, pf prefetchFlags) error {
	if jsonOut != "" && which != "bench" {
		return fmt.Errorf("-json requires -exp bench")
	}
	out := os.Stdout
	section := func(title string) {
		fmt.Fprintf(out, "\n=== %s ===\n\n", title)
	}
	all := which == "all"

	if all || which == "table1" {
		section("Table I — datasets")
		exp.Table1(full, diameterSamples(full), seed).Render(out)
	}
	if all || which == "running" {
		section("Running example — barbell rewiring (§II–III)")
		res, err := exp.RunningExample(seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "theorem6" {
		section("Theorem 6 — latent-space removal bound (§IV-B)")
		cfg := exp.QuickTheorem6Config()
		if full {
			cfg = exp.DefaultTheorem6Config()
		}
		res, err := exp.Theorem6(cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fig7" {
		cfg := exp.QuickFig7Config()
		if full {
			cfg = exp.DefaultFig7Config()
		}
		for _, ds := range exp.Datasets(full) {
			if dataset != "" && ds.Name != dataset {
				continue
			}
			section(fmt.Sprintf("Fig 7 — bias vs query cost (%s)", ds.Name))
			res, err := exp.Fig7(ds, cfg, seed)
			if err != nil {
				return err
			}
			res.Render(out)
		}
	}
	if all || which == "fig8" {
		section("Fig 8 — KL divergence and query cost, SRW vs MTO")
		cfg := exp.QuickFig8Config()
		if full {
			cfg = exp.DefaultFig8Config()
		}
		res, err := exp.Fig8(exp.Datasets(full), cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fig9" {
		section("Fig 9 — Geweke threshold sweep (Slashdot B)")
		cfg := exp.QuickFig9Config()
		if full {
			cfg = exp.DefaultFig9Config()
		}
		ds := exp.DatasetByName("Slashdot B", full)
		res, err := exp.Fig9(*ds, cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fig10" {
		section("Fig 10 — latent-space mixing times")
		cfg := exp.QuickFig10Config()
		if full {
			cfg = exp.DefaultFig10Config()
		}
		res, err := exp.Fig10(cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fig11" {
		section("Fig 11 — Google Plus stand-in")
		cfg := exp.QuickFig11Config()
		if full {
			cfg = exp.DefaultFig11Config()
		}
		res, err := exp.Fig11(full, cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if all || which == "fleet" {
		section("Fleet — concurrent walkers vs sequential round-robin")
		cfg := exp.QuickFleetConfig()
		if full {
			cfg = exp.DefaultFleetConfig()
		}
		target := exp.Datasets(full)[0]
		if dataset != "" {
			d := exp.DatasetByName(dataset, full)
			if d == nil {
				return fmt.Errorf("unknown dataset %q", dataset)
			}
			target = *d
		}
		exp.FleetScaling(target, cfg, seed).Render(out)
	}
	if all || which == "prefetch" {
		section("Prefetch — asynchronous speculative pipeline")
		cfg := exp.QuickPrefetchExpConfig()
		if full {
			cfg = exp.DefaultPrefetchExpConfig()
		}
		if pf.depth > 0 {
			cfg.Depth = pf.depth
		}
		if pf.workers > 0 {
			cfg.Workers = pf.workers
		}
		if pf.topK > 0 {
			cfg.TopK = pf.topK
		}
		switch pf.strategy {
		case "", "all":
		case exp.PrefetchNone, exp.PrefetchNextHop, exp.PrefetchFrontier:
			// Always keep the no-prefetch reference so speedups are defined.
			cfg.Strategies = []string{exp.PrefetchNone}
			if pf.strategy != exp.PrefetchNone {
				cfg.Strategies = append(cfg.Strategies, pf.strategy)
			}
		default:
			return fmt.Errorf("unknown -prefetch strategy %q", pf.strategy)
		}
		target := exp.Datasets(full)[0]
		if dataset != "" {
			d := exp.DatasetByName(dataset, full)
			if d == nil {
				return fmt.Errorf("unknown dataset %q", dataset)
			}
			target = *d
		}
		exp.PrefetchScaling(target, cfg, seed).Render(out)
	}
	if all || which == "contention" {
		section("Contention — sharded storage engine vs legacy single lock")
		cfg := exp.QuickContentionConfig()
		if full {
			cfg = exp.DefaultContentionConfig()
		}
		target := exp.Datasets(full)[0]
		if dataset != "" {
			d := exp.DatasetByName(dataset, full)
			if d == nil {
				return fmt.Errorf("unknown dataset %q", dataset)
			}
			target = *d
		}
		exp.ContentionScaling(target, cfg, seed).Render(out)
	}
	if all || which == "batching" {
		section("Batching — demand-coalescing dispatch over a serialized HTTP provider")
		cfg := exp.QuickBatchingConfig()
		if full {
			cfg = exp.DefaultBatchingConfig()
		}
		target := exp.Datasets(full)[0]
		if dataset != "" {
			d := exp.DatasetByName(dataset, full)
			if d == nil {
				return fmt.Errorf("unknown dataset %q", dataset)
			}
			target = *d
		}
		res, err := exp.BatchingScaling(context.Background(), target, cfg, seed)
		if err != nil {
			return err
		}
		res.Render(out)
	}
	if which == "memsmoke" {
		// Standalone like bench: a CI guard, not a paper artifact. Run it
		// under a fixed GOMEMLIMIT to turn a storage-layer memory regression
		// into a loud failure.
		section("Memory smoke — 1M-node CSR graph + sharded-cache fleet walk")
		res, err := exp.MemSmoke(exp.DefaultMemSmokeConfig(), seed)
		if res != nil {
			res.Render(out)
		}
		if err != nil {
			return err
		}
	}
	if which == "snapcold" {
		// Standalone: the snapshot backend's cold path in isolation (the
		// bench suite's SnapshotOpenCold row runs the same workload).
		section("Snapshot cold open — CSR snapshot open + 10k-step walk")
		ds := exp.Datasets(full)[0]
		row, err := exp.RunSnapshotCold(ds, 10_000, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "dataset: %s (%d nodes, %d edges)\nopen+walk wall: %s\nunique queries: %d\n",
			ds.Name, ds.Graph.NumNodes(), ds.Graph.NumEdges(), row.Wall, row.Unique)
	}
	if which == "warmstart" {
		// Standalone: the durable cache's cold-vs-reopen path in isolation
		// (the bench suite's DurableColdCrawl/DurableWarmCrawl rows run the
		// same workload).
		section("Durable warm start — cold crawl vs reopened-cache crawl")
		ds := exp.Datasets(full)[0]
		row, err := exp.RunWarmStart(ds, 10_000, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "dataset: %s (%d nodes, %d edges)\ncold crawl wall: %s (%d unique queries, all WAL-persisted)\nwarm crawl wall: %s (%d recovered, %d newly billed)\n",
			ds.Name, ds.Graph.NumNodes(), ds.Graph.NumEdges(),
			row.ColdWall, row.ColdUnique, row.WarmWall, row.Recovered, row.WarmNew)
	}
	if which == "bench" {
		section("Bench suite — deterministic CI gate workloads")
		suite, err := exp.BenchSuite(context.Background(), seed)
		if err != nil {
			return err
		}
		renderSuite(out, suite)
		if jsonOut != "" {
			if err := benchcmp.Save(jsonOut, suite); err != nil {
				return err
			}
			fmt.Fprintf(out, "\nwrote %s\n", jsonOut)
		}
	}
	if !all {
		switch which {
		case "table1", "running", "fig7", "fig8", "fig9", "fig10", "fig11", "theorem6", "fleet", "prefetch", "contention", "batching", "bench", "memsmoke", "snapcold", "warmstart":
		default:
			return fmt.Errorf("unknown experiment %q", which)
		}
	}
	return nil
}

// renderSuite prints the bench suite as an aligned table.
func renderSuite(out *os.File, suite benchcmp.Suite) {
	fmt.Fprintf(out, "seed %d\n\n", suite.Seed)
	t := &exp.Table{Header: []string{"benchmark", "wall", "samples", "queries", "speedup", "allocs/op"}}
	for _, r := range suite.Results {
		speedup := "-"
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		allocs := "-"
		if r.WallNS == 0 {
			// Pure-counter rows (the steady-state allocation gates) carry no
			// wall-clock; for them allocs/op is the measurement.
			allocs = fmt.Sprintf("%.2f", r.AllocsPerOp)
		}
		t.AddRow(r.Name, fmt.Sprintf("%dms", r.WallNS/1e6), fmt.Sprintf("%d", r.Samples),
			fmt.Sprintf("%d", r.Queries), speedup, allocs)
	}
	t.Render(out)
}

func diameterSamples(full bool) int {
	if full {
		return 200
	}
	return 60
}
