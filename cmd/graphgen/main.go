// Command graphgen generates the calibrated synthetic datasets (or custom
// social graphs) and writes them as SNAP-style edge lists, binary CSR
// snapshots, or both.
//
// Usage:
//
//	graphgen -preset epinions -out epinions.txt
//	graphgen -nodes 10000 -edges 50000 -seed 3 -out custom.txt
//	graphgen -preset epinions -snapshot epinions.csr
//	mto-sample -source snapshot:epinions.csr -alg MTO   # O(1) reopen
package main

import (
	"flag"
	"fmt"
	"os"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/rng"
)

func main() {
	var (
		preset = flag.String("preset", "", "epinions|slashdota|slashdotb|gplus|barbell|latent (empty: custom social graph)")
		nodes  = flag.Int("nodes", 10000, "custom graph: node count")
		edges  = flag.Int("edges", 50000, "custom graph: target edge count")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "edge-list output file (default stdout unless -snapshot is given)")
		snap   = flag.String("snapshot", "", "also (or only) write a binary CSR snapshot, openable via rewire.Open(\"snapshot:<path>\")")
	)
	flag.Parse()
	if err := run(*preset, *nodes, *edges, *seed, *out, *snap); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(preset string, nodes, edges int, seed uint64, out, snap string) error {
	var g *graph.Graph
	switch preset {
	case "epinions":
		g = gen.EpinionsLike(seed)
	case "slashdota":
		g = gen.SlashdotALike(seed)
	case "slashdotb":
		g = gen.SlashdotBLike(seed)
	case "gplus":
		g = gen.GooglePlusLike(seed)
	case "barbell":
		g = gen.Barbell(11)
	case "latent":
		var err error
		g, _, err = gen.LatentSpace(gen.PaperLatentConfig(nodes), rng.New(seed))
		if err != nil {
			return err
		}
	case "":
		var err error
		g, err = gen.Social(gen.SocialConfig{Nodes: nodes, TargetEdges: edges}, rng.New(seed))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}

	if snap != "" {
		if err := g.WriteSnapshotFile(snap); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "graphgen: wrote CSR snapshot %s\n", snap)
	}
	if out != "" || snap == "" {
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := g.WriteEdgeList(w); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "graphgen: %d nodes, %d edges written\n", g.NumNodes(), g.NumEdges())
	return nil
}
