// Command mto-sample runs one sampler against a simulated restrictive OSN
// interface and reports the aggregate estimate, its error, and the query
// budget spent — the paper's end-to-end use case in one invocation.
//
// Usage:
//
//	mto-sample -dataset Epinions -alg MTO -samples 4000
//	mto-sample -graph edges.txt -alg SRW -aggregate degree
package main

import (
	"flag"
	"fmt"
	"os"

	"rewire/internal/diag"
	"rewire/internal/estimate"
	"rewire/internal/exp"
	"rewire/internal/graph"
	"rewire/internal/osn"
	"rewire/internal/rng"
	"rewire/internal/stats"
)

func main() {
	var (
		dataset = flag.String("dataset", "Epinions", "preset dataset: Epinions | 'Slashdot A' | 'Slashdot B'")
		full    = flag.Bool("full", false, "use the full-scale preset")
		file    = flag.String("graph", "", "edge-list file (overrides -dataset)")
		alg     = flag.String("alg", "MTO", "sampler: SRW|MTO|MTO_RM|MTO_RP|MHRW|RJ")
		samples = flag.Int("samples", 4000, "samples after burn-in")
		geweke  = flag.Float64("geweke", diag.DefaultThreshold, "Geweke convergence threshold")
		seed    = flag.Uint64("seed", 1, "random seed")
		limitFB = flag.Bool("facebook-limits", false, "apply the paper's 600/600s quota to the interface")
	)
	flag.Parse()
	if err := run(*dataset, *full, *file, *alg, *samples, *geweke, *seed, *limitFB); err != nil {
		fmt.Fprintln(os.Stderr, "mto-sample:", err)
		os.Exit(1)
	}
}

func run(dataset string, full bool, file, alg string, samples int, geweke float64, seed uint64, limitFB bool) error {
	var g *graph.Graph
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		if g, err = graph.ReadEdgeList(f, 0); err != nil {
			return err
		}
	default:
		ds := exp.DatasetByName(dataset, full)
		if ds == nil {
			return fmt.Errorf("unknown dataset %q", dataset)
		}
		g = ds.Graph
	}

	cfg := osn.Config{}
	if limitFB {
		cfg = osn.FacebookLimits()
	}
	svc := osn.NewService(g, nil, cfg)
	client := osn.NewClient(svc)
	r := rng.New(seed)
	start := graph.NodeID(r.Intn(g.NumNodes()))
	walker, weighter, err := exp.NewWalker(alg, client, client.NumUsers(), start, r)
	if err != nil {
		return err
	}
	info := func(v graph.NodeID) (int, estimate.Attrs) { return client.Degree(v), estimate.Attrs{} }
	res := estimate.RunSession(walker, weighter, estimate.AvgDegree(), info, client.UniqueQueries,
		estimate.SessionConfig{
			BurnIn:  diag.NewGeweke(geweke, 200),
			Samples: samples,
		})

	truth := estimate.GroundTruthDegree(g)
	fmt.Printf("dataset:            %s (%d nodes, %d edges)\n", dataset, g.NumNodes(), g.NumEdges())
	fmt.Printf("sampler:            %s (seed %d, start %d)\n", alg, seed, start)
	fmt.Printf("burn-in:            %d steps (converged: %v)\n", res.BurnInSteps, res.BurnInConverged)
	fmt.Printf("samples:            %d\n", res.Samples)
	fmt.Printf("estimated avg deg:  %.4f\n", res.Estimate)
	fmt.Printf("true avg degree:    %.4f\n", truth)
	fmt.Printf("relative error:     %.4f\n", stats.RelativeError(res.Estimate, truth))
	fmt.Printf("unique query cost:  %d\n", res.FinalCost)
	if limitFB {
		fmt.Printf("simulated time:     %s (%d rate-limit waits)\n",
			svc.SimulatedElapsed(), svc.RateLimitWaits())
	}
	return nil
}
