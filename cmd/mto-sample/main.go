// Command mto-sample runs one sampling session against a simulated
// restrictive OSN interface and reports the aggregate estimate, its error,
// and the query budget spent — the paper's end-to-end use case in one
// invocation, built entirely on the public rewire SDK.
//
// Usage:
//
//	mto-sample -dataset Epinions -alg MTO -samples 4000
//	mto-sample -graph edges.txt -alg SRW -fleet 8 -timeout 30s
//	mto-sample -alg MTO -budget 2000           # stop at 2000 unique queries
//	mto-sample -source snapshot:crawl.csr -alg MTO
//	mto-sample -source http://host/graph -alg SRW -fleet 8
//	mto-sample -source http://host/graph -cache ./crawlcache  # persist + warm-start
//	mto-sample -source http://host/graph -fleet 8 -batch 64 -batchwait 2ms  # coalesce fleet demand
//
// A -timeout deadline or a -budget cap ends the run early with whatever has
// been sampled: the session is the paper's protocol made interruptible.
// -source opens any registered backend URL (mem:, sim:, http(s)://,
// snapshot:) instead of simulating over a local graph; ground-truth columns
// are skipped because no local topology exists to compare against.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"rewire"
)

func main() {
	var (
		dataset   = flag.String("dataset", "Epinions", "preset dataset: Epinions | 'Slashdot A' | 'Slashdot B' | 'Google Plus'")
		full      = flag.Bool("full", false, "use the full-scale preset")
		file      = flag.String("graph", "", "edge-list file (overrides -dataset)")
		source    = flag.String("source", "", "backend URL (mem:, sim:, http://, snapshot:) — overrides -dataset/-graph/-facebook-limits")
		alg       = flag.String("alg", "MTO", "sampler: SRW|MTO|MTO_RM|MTO_RP|MHRW|RJ")
		fleetK    = flag.Int("fleet", 1, "concurrent walkers sharing the budget and overlay")
		samples   = flag.Int("samples", 4000, "samples after burn-in")
		geweke    = flag.Float64("geweke", 0.1, "Geweke convergence threshold")
		seed      = flag.Uint64("seed", 1, "random seed")
		limitFB   = flag.Bool("facebook-limits", false, "apply the paper's 600/600s quota to the interface")
		timeout   = flag.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none)")
		budget    = flag.Int64("budget", 0, "unique-query budget (0 = unlimited)")
		cache     = flag.String("cache", "", "durable cache directory: persist every billed fetch and warm-start the next run from it (empty = in-memory only)")
		batchWait = flag.Duration("batchwait", 0, "demand-coalescing window for -source backends: misses arriving within it share one round-trip (0 = off unless -batch is set)")
		batchMax  = flag.Int("batch", 0, "max ids per coalesced round-trip (0 = SDK default; enables coalescing when set)")
	)
	flag.Parse()
	if err := run(*dataset, *full, *file, *source, *alg, *fleetK, *samples, *geweke, *seed, *limitFB, *timeout, *budget, *cache, *batchWait, *batchMax); err != nil {
		fmt.Fprintln(os.Stderr, "mto-sample:", err)
		os.Exit(1)
	}
}

// options maps the paper's algorithm names (including the MTO_RM / MTO_RP
// ablations) onto SDK options.
func options(alg string) ([]rewire.Option, error) {
	switch alg {
	case "SRW":
		return []rewire.Option{rewire.WithAlgorithm(rewire.AlgSRW)}, nil
	case "MHRW":
		return []rewire.Option{rewire.WithAlgorithm(rewire.AlgMHRW)}, nil
	case "RJ":
		return []rewire.Option{rewire.WithAlgorithm(rewire.AlgRJ)}, nil
	case "MTO":
		return []rewire.Option{rewire.WithAlgorithm(rewire.AlgMTO)}, nil
	case "MTO_RM":
		return []rewire.Option{rewire.WithAlgorithm(rewire.AlgMTO), rewire.WithReplacement(false)}, nil
	case "MTO_RP":
		return []rewire.Option{rewire.WithAlgorithm(rewire.AlgMTO), rewire.WithRemoval(false)}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}

func run(dataset string, full bool, file, source, alg string, fleetK, samples int, geweke float64, seed uint64, limitFB bool, timeout time.Duration, budget int64, cache string, batchWait time.Duration, batchMax int) error {
	coalesce := batchWait > 0 || batchMax > 0
	if coalesce && source == "" {
		return errors.New("-batch/-batchwait coalesce round-trips to a remote backend: they require -source")
	}
	var g *rewire.Graph // nil when -source names an external backend
	var provider *rewire.Provider
	var err error
	switch {
	case source != "":
		openCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		be, oerr := rewire.OpenBackend(openCtx, source)
		cancel()
		if oerr != nil {
			return oerr
		}
		if coalesce {
			be = rewire.WithBatching(be, rewire.BatchingOptions{MaxBatch: batchMax, MaxWait: batchWait})
		}
		provider = rewire.BackendSource(be)
		defer provider.Close()
		dataset = source
	case file != "":
		if g, err = rewire.ReadEdgeListFile(file); err != nil {
			return err
		}
		dataset = file
	default:
		if g, err = rewire.PresetGraph(dataset, full); err != nil {
			return err
		}
	}
	if provider == nil {
		limits := rewire.Limits{}
		if limitFB {
			limits = rewire.FacebookLimits()
		}
		provider = rewire.Simulate(g, limits)
	}
	if budget > 0 {
		provider.SetBudget(budget)
	}

	opts, err := options(alg)
	if err != nil {
		return err
	}
	opts = append(opts, rewire.WithFleet(fleetK), rewire.WithSeed(seed))
	if cache != "" {
		opts = append(opts, rewire.WithDurableCache(cache))
	}
	session, err := rewire.NewSession(provider, opts...)
	if err != nil {
		return err
	}
	if cache != "" {
		if st, ok := provider.DurableCacheStats(); ok && st.Entries > 0 {
			fmt.Printf("warm start:         %d cached users recovered from %s (%d WAL records replayed, gen %d)\n",
				st.Entries, cache, st.Replayed, st.Gen)
		}
		if source == "" {
			// The -source path deferred provider.Close above; the simulated
			// path needs one now that there is a WAL to seal and a flock to
			// release on exit.
			defer provider.Close()
		}
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := session.Estimate(ctx, rewire.AvgDegree(), rewire.EstimateOptions{
		Samples:         samples,
		BurnIn:          true,
		GewekeThreshold: geweke,
	})
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("NOTE: deadline %v expired; reporting the partial run\n", timeout)
	case errors.Is(err, rewire.ErrBudgetExhausted):
		fmt.Printf("NOTE: query budget %d exhausted; reporting the partial run\n", budget)
	default:
		return err
	}

	if g != nil {
		fmt.Printf("dataset:            %s (%d nodes, %d edges)\n", dataset, g.NumNodes(), g.NumEdges())
	} else {
		fmt.Printf("source:             %s (%d users)\n", dataset, provider.NumUsers())
	}
	fmt.Printf("sampler:            %s (seed %d, fleet %d)\n", alg, seed, fleetK)
	fmt.Printf("burn-in:            %d steps (converged: %v)\n", res.BurnInSteps, res.Converged)
	fmt.Printf("samples:            %d\n", res.Samples)
	fmt.Printf("estimated avg deg:  %.4f\n", res.Estimate)
	if g != nil {
		truth := g.AverageDegree()
		fmt.Printf("true avg degree:    %.4f\n", truth)
		fmt.Printf("relative error:     %.4f\n", rewire.RelativeError(res.Estimate, truth))
	}
	fmt.Printf("unique query cost:  %d\n", res.UniqueQueries)
	if limitFB && g != nil {
		// -source backends are not simulated: -facebook-limits is documented
		// as overridden, so don't print zeroed simulation telemetry for them.
		fmt.Printf("simulated time:     %s (%d rate-limit waits)\n",
			provider.SimulatedElapsed(), provider.RateLimitWaits())
	}
	return nil
}
