// Command graphstat reports the Table I statistics (plus spectral ones) for
// an edge-list file: node/edge counts, degree summary, clustering, 90%
// effective diameter, sweep-cut conductance and the SLEM mixing time.
//
// Usage:
//
//	graphstat -in epinions.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"rewire/internal/graph"
	"rewire/internal/rng"
	"rewire/internal/spectral"
)

func main() {
	var (
		in            = flag.String("in", "", "edge-list file (required)")
		seed          = flag.Uint64("seed", 1, "random seed for sampled statistics")
		samples       = flag.Int("samples", 200, "BFS sources / clustering samples")
		spectralStats = flag.Bool("spectral", true, "compute conductance and mixing time (power iteration)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "graphstat: -in is required")
		os.Exit(2)
	}
	if err := run(*in, *seed, *samples, *spectralStats); err != nil {
		fmt.Fprintln(os.Stderr, "graphstat:", err)
		os.Exit(1)
	}
}

func run(in string, seed uint64, samples int, withSpectral bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f, 0)
	if err != nil {
		return err
	}
	r := rng.New(seed)
	_, comps := g.ConnectedComponents()
	fmt.Printf("nodes:              %d\n", g.NumNodes())
	fmt.Printf("edges:              %d\n", g.NumEdges())
	fmt.Printf("components:         %d\n", comps)
	fmt.Printf("degree min/avg/max: %d / %.2f / %d\n", g.MinDegree(), g.AverageDegree(), g.MaxDegree())
	fmt.Printf("clustering (est):   %.4f\n", g.AverageClustering(samples*5, r.Split()))
	fmt.Printf("90%% eff. diameter:  %.2f\n", g.EffectiveDiameter(0.9, samples, r.Split()))
	if withSpectral && g.NumEdges() > 0 {
		giant, _ := g.LargestComponent()
		phi, _, err := spectral.SpectralConductance(giant, 3000, 1e-10)
		if err != nil {
			return err
		}
		lam2, _, err := spectral.Lambda2(giant, 3000, 1e-10)
		if err != nil {
			return err
		}
		fmt.Printf("conductance (sweep, giant): %.5f\n", phi)
		fmt.Printf("SLEM mixing time (giant):   %.1f\n", spectral.MixingTimeSLEM(lam2))
	}
	return nil
}
