// Command benchcmp diffs a benchmark run (cmd/mto-bench -exp bench -json)
// against the committed baseline and exits non-zero on a gated regression —
// the teeth of the CI bench-gate job.
//
// Usage:
//
//	benchcmp [-tol 0.2] bench/baseline.json bench/run.json
//
// To refresh the baseline after an intentional change, regenerate it
// (mto-bench -exp bench -seed 1 -json bench/baseline.json), re-apply the
// min_speedup floors, and commit the result.
package main

import (
	"flag"
	"fmt"
	"os"

	"rewire/internal/benchcmp"
)

func main() {
	tol := flag.Float64("tol", benchcmp.DefaultTolerance, "relative tolerance on gated counters")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-tol 0.2] baseline.json run.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *tol); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

func run(basePath, runPath string, tol float64) error {
	base, err := benchcmp.Load(basePath)
	if err != nil {
		return err
	}
	cur, err := benchcmp.Load(runPath)
	if err != nil {
		return err
	}
	findings := benchcmp.Compare(base, cur, tol)
	for _, f := range findings {
		fmt.Println(f)
	}
	if benchcmp.HasRegression(findings) {
		return fmt.Errorf("benchmark regression beyond ±%.0f%% tolerance", tol*100)
	}
	fmt.Printf("ok: %d benchmarks within ±%.0f%% of baseline\n", len(base.Results), tol*100)
	return nil
}
