// Command rewire-serve runs the multi-tenant sampling daemon: a long-lived
// HTTP/JSON service hosting concurrent sampling jobs over shared backends.
// Each backend URL gets exactly one provider stack (cache, singleflight,
// global + per-tenant ledgers, service-wide rate limit), so every tenant's
// walk warms every other tenant's cache while their bills stay exactly
// separable.
//
//	rewire-serve -addr :8080 -state /var/lib/rewire-serve -cache /var/lib/rewire-cache
//
// Submit jobs with POST /v1/jobs, follow them with GET /v1/jobs/{id}/stream
// (JSON lines), pause/resume with POST /v1/jobs/{id}/pause and .../resume.
// On SIGINT/SIGTERM the daemon drains: every running job is paused at a step
// boundary and checkpointed, state is saved to -state (when set), and the
// next start loads it — paused jobs resume byte-identically across the
// restart. With -cache, each backend additionally persists its demand-billed
// neighbor cache through a write-ahead log as it runs, so even a daemon that
// dies without draining (crash, SIGKILL, power loss) restarts with the
// cache and billing ledger recovered exactly: resumed jobs replay their
// trajectories warm instead of re-querying the provider.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rewire/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	stateDir := flag.String("state", "", "state directory for drain checkpoints (empty = no persistence)")
	rate := flag.Float64("rate", 0, "service-wide backend rate limit in requests/sec (0 = unlimited)")
	burst := flag.Int("burst", 1, "rate limiter burst size")
	maxJobs := flag.Int("max-jobs-per-tenant", 0, "max live jobs per tenant (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for jobs to checkpoint")
	cacheDir := flag.String("cache", "", "durable cache directory: per-backend write-ahead-logged caches that survive crashes and warm-start restarts (empty = in-memory only)")
	batchWait := flag.Duration("batchwait", 0, "demand-coalescing window: cache misses from all tenants arriving within it share one provider round-trip (0 = no coalescing)")
	batchMax := flag.Int("batch", 0, "max ids per coalesced round-trip (0 = SDK default; meaningful only with -batchwait)")
	flag.Parse()

	// The server gets its own root context, NOT the signal context: on
	// SIGTERM the jobs must PAUSE (checkpointing their walkers), not be
	// cancelled mid-step.
	srv := serve.New(context.Background(), serve.Options{
		RateLimitRPS:     *rate,
		RateLimitBurst:   *burst,
		MaxJobsPerTenant: *maxJobs,
		CacheDir:         *cacheDir,
		BatchWait:        *batchWait,
		BatchMax:         *batchMax,
	})
	if *stateDir != "" {
		if err := srv.LoadState(*stateDir); err != nil {
			log.Fatalf("loading state: %v", err)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("rewire-serve listening on %s", *addr)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("http server: %v", err)
	case <-sigCtx.Done():
	}
	log.Printf("shutting down: draining jobs (up to %s)", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	if *stateDir != "" {
		if err := srv.SaveState(*stateDir); err != nil {
			log.Printf("saving state: %v", err)
		} else {
			log.Printf("state saved to %s", *stateDir)
		}
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
