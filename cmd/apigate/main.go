// Command apigate guards the public rewire API surface: it renders every
// exported declaration of a package directory into a deterministic text
// snapshot and compares it against a checked-in golden file, so CI fails the
// moment a PR changes an exported symbol without explicitly regenerating the
// snapshot. An apidiff in spirit, with zero dependencies.
//
// Usage:
//
//	apigate <pkgdir>                  # print the surface to stdout
//	apigate -write api/rewire.txt .   # (re)generate the golden file
//	apigate -check api/rewire.txt .   # diff against it; exit 1 on drift
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		write = flag.String("write", "", "write the snapshot to this file")
		check = flag.String("check", "", "compare the snapshot against this file; exit 1 on drift")
	)
	flag.Parse()
	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	snapshot, err := surface(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apigate:", err)
		os.Exit(2)
	}
	switch {
	case *write != "":
		if err := os.WriteFile(*write, []byte(snapshot), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apigate:", err)
			os.Exit(2)
		}
	case *check != "":
		golden, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apigate:", err)
			os.Exit(2)
		}
		if string(golden) != snapshot {
			fmt.Fprintf(os.Stderr, "apigate: exported API of %s drifted from %s\n\n", dir, *check)
			printDiff(os.Stderr, string(golden), snapshot)
			fmt.Fprintf(os.Stderr, "\nIf the change is intentional, regenerate with:\n\tgo run ./cmd/apigate -write %s %s\n", *check, dir)
			os.Exit(1)
		}
	default:
		fmt.Print(snapshot)
	}
}

// surface renders the exported declarations of the package in dir (test
// files excluded) as one sorted, deterministic text block.
func surface(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return "", err
	}
	var decls []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") || pkg.Name == "main" {
			continue
		}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decls = append(decls, renderDecl(fset, d)...)
			}
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n") + "\n", nil
}

// renderDecl returns the exported-surface lines of one top-level
// declaration: full signatures for funcs and methods, full type specs
// (struct fields and interface methods are part of the contract), and
// name+type for consts and vars.
func renderDecl(fset *token.FileSet, d ast.Decl) []string {
	switch decl := d.(type) {
	case *ast.FuncDecl:
		if !decl.Name.IsExported() || !receiverExported(decl) {
			return nil
		}
		fn := *decl
		fn.Body = nil // signature only
		fn.Doc = nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		var out []string
		for i, spec := range decl.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				cp := *sp
				cp.Doc, cp.Comment = nil, nil
				cp.Type = exportedType(cp.Type)
				out = append(out, "type "+render(fset, &cp))
			case *ast.ValueSpec:
				cp := *sp
				cp.Doc, cp.Comment = nil, nil
				var names []*ast.Ident
				for _, n := range cp.Names {
					if n.IsExported() {
						names = append(names, n)
					}
				}
				if len(names) == 0 {
					continue
				}
				// Values are implementation; names (and an explicit type, if
				// any) are the contract — except for constants in an iota
				// block, whose VALUE is their position: record the ordinal so
				// reordering (a silent value change) trips the gate.
				kw := "const"
				if decl.Tok == token.VAR {
					kw = "var"
				}
				cp.Names = names
				line := kw + " " + render(fset, &cp)
				if decl.Tok == token.CONST && len(decl.Specs) > 1 {
					line += fmt.Sprintf(" [ordinal %d]", i)
				}
				out = append(out, line)
			}
		}
		return out
	}
	return nil
}

// exportedType returns t with unexported struct fields and all field
// comments stripped: unexported fields (and their docs) are implementation,
// not contract, and including them would make the gate fire on purely
// internal refactors. Interface method sets pass through whole — every
// method, exported or not, constrains implementability.
func exportedType(t ast.Expr) ast.Expr {
	st, ok := t.(*ast.StructType)
	if !ok || st.Fields == nil {
		return t
	}
	fields := &ast.FieldList{Opening: st.Fields.Opening, Closing: st.Fields.Closing}
	for _, f := range st.Fields.List {
		cp := *f
		cp.Doc, cp.Comment = nil, nil
		if len(cp.Names) == 0 {
			// Embedded field: keep when the embedded type name is exported.
			if embeddedExported(cp.Type) {
				fields.List = append(fields.List, &cp)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range cp.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			continue
		}
		cp.Names = names
		fields.List = append(fields.List, &cp)
	}
	out := *st
	out.Fields = fields
	return &out
}

// embeddedExported reports whether an embedded field's type name is
// exported (pkg-qualified embeds always are).
func embeddedExported(t ast.Expr) bool {
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.SelectorExpr:
			return tt.Sel.IsExported()
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not public surface).
func receiverExported(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// render prints a node in canonical gofmt style, collapsed onto the degree
// of whitespace go/printer chooses (deterministic for a given AST).
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 4}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	return buf.String()
}

// printDiff emits a minimal line diff (golden vs current) — enough to see
// what moved without shipping a diff library.
func printDiff(w *os.File, golden, current string) {
	goldenLines := strings.Split(golden, "\n")
	currentLines := strings.Split(current, "\n")
	goldenSet := make(map[string]bool, len(goldenLines))
	for _, l := range goldenLines {
		goldenSet[l] = true
	}
	currentSet := make(map[string]bool, len(currentLines))
	for _, l := range currentLines {
		currentSet[l] = true
	}
	for _, l := range goldenLines {
		if !currentSet[l] {
			fmt.Fprintf(w, "- %s\n", l)
		}
	}
	for _, l := range currentLines {
		if !goldenSet[l] {
			fmt.Fprintf(w, "+ %s\n", l)
		}
	}
}
