package rewire

import (
	"context"
	"fmt"
	"net/url"
	"os"
	"slices"
	"sort"
	"strconv"
	"sync"
	"time"

	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/httpsrc"
	"rewire/internal/osn"
	"rewire/internal/rng"
)

// Driver opens a Backend from a parsed URL — the sql-driver-style extension
// point of the SDK. Built-in schemes:
//
//	mem:barbell?n=50              in-memory generated graph (free, local)
//	mem:social?nodes=1000&edges=4000&seed=1
//	mem:preset?name=Epinions&full=false
//	sim:barbell?n=50&limits=facebook   simulated restrictive provider over
//	                                   the same graph specs (qpw, window,
//	                                   latency, real override individual
//	                                   quota fields)
//	http://host/path?timeout=5s   live JSON neighbor-list provider
//	                              (driver params: timeout, retries, backoff,
//	                              max_backoff, batch, batchwait — anything
//	                              else is forwarded to the provider; batchwait
//	                              > 0 wraps the backend in a WithBatching
//	                              coalescing window of batch ids flushed
//	                              after at most that wait)
//	snapshot:crawl.csr            read-only binary CSR snapshot, mmap'd on
//	                              linux (?mode=readerat forces the portable
//	                              io.ReaderAt path)
//	cache:DIR?src=URL             durable write-ahead-logged cache over any
//	                              other scheme: fetches persist before they
//	                              are served, and reopening the directory
//	                              warm-starts cache and billing ledger
//	                              exactly (?fsync=1 fsyncs per record)
//
// Third parties add schemes with Register. Open never retains u; a Driver
// may.
type Driver interface {
	Open(ctx context.Context, u *url.URL) (Backend, error)
}

// DriverFunc adapts a function to the Driver interface.
type DriverFunc func(ctx context.Context, u *url.URL) (Backend, error)

// Open implements Driver.
func (f DriverFunc) Open(ctx context.Context, u *url.URL) (Backend, error) { return f(ctx, u) }

var (
	driversMu sync.RWMutex
	drivers   = make(map[string]Driver)
)

// Register makes a driver available to Open under the given URL scheme. It
// panics on an empty scheme, a nil driver, or a duplicate registration —
// like database/sql, registration is an init-time affair and such mistakes
// are programmer errors.
func Register(scheme string, d Driver) {
	driversMu.Lock()
	defer driversMu.Unlock()
	if scheme == "" {
		panic("rewire: Register with empty scheme")
	}
	if d == nil {
		panic("rewire: Register with nil driver")
	}
	if _, dup := drivers[scheme]; dup {
		panic("rewire: Register called twice for scheme " + scheme)
	}
	drivers[scheme] = d
}

// Drivers returns the registered scheme names, sorted.
func Drivers() []string {
	driversMu.RLock()
	defer driversMu.RUnlock()
	out := make([]string, 0, len(drivers))
	for s := range drivers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Open resolves rawURL's scheme against the driver registry, opens the
// backend under ctx (drivers use it for their connectivity probes — an
// unreachable HTTP provider fails here, not on the first walk step), and
// wraps it in a Provider: the cached, demand-billed, budget- and
// prefetch-capable Source every backend gets for free. Close the Provider
// when done; backends holding resources (snapshot mappings, HTTP
// connections) release them there.
//
// An unresolvable scheme fails with an *UnknownDriverError (class
// ErrUnknownDriver) naming the scheme and the registered alternatives.
func Open(ctx context.Context, rawURL string) (*Provider, error) {
	be, err := OpenBackend(ctx, rawURL)
	if err != nil {
		return nil, err
	}
	return BackendSource(be), nil
}

// OpenBackend is Open without the Provider wrapping: it resolves rawURL's
// scheme and returns the raw Backend the driver produced. Use it to compose
// middleware (WithRetry, WithRateLimit, WithMetrics) around the backend
// before building the Provider yourself with BackendSource — the layering a
// multi-tenant service needs, where one shared Provider per URL carries
// service-wide rate limits and metrics underneath every tenant.
func OpenBackend(ctx context.Context, rawURL string) (Backend, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("rewire: parsing %q: %w", rawURL, err)
	}
	if u.Scheme == "" {
		return nil, &UnknownDriverError{URL: rawURL, Drivers: Drivers()}
	}
	driversMu.RLock()
	d, ok := drivers[u.Scheme]
	driversMu.RUnlock()
	if !ok {
		return nil, &UnknownDriverError{Scheme: u.Scheme, URL: rawURL, Drivers: Drivers()}
	}
	return d.Open(ctx, u)
}

func init() {
	Register("mem", DriverFunc(openMem))
	Register("sim", DriverFunc(openSim))
	Register("http", DriverFunc(openHTTP))
	Register("https", DriverFunc(openHTTP))
	Register("snapshot", DriverFunc(openSnapshot))
	Register("cache", DriverFunc(openCache))
}

// parseGraphSpec builds the in-memory graph a mem: or sim: URL describes.
// The opaque part names the generator; query parameters tune it.
func parseGraphSpec(u *url.URL) (*Graph, error) {
	kind := u.Opaque
	if kind == "" {
		kind = u.Path
	}
	q := u.Query()
	switch kind {
	case "barbell":
		n := 50
		if s := q.Get("n"); s != "" {
			var err error
			if n, err = strconv.Atoi(s); err != nil || n < 3 {
				return nil, fmt.Errorf("rewire: %s: bad clique size n=%q", u.Scheme, s)
			}
		}
		return Barbell(n), nil
	case "social":
		nodes, edges, seed := 1000, 4000, uint64(1)
		if s := q.Get("nodes"); s != "" {
			var err error
			if nodes, err = strconv.Atoi(s); err != nil || nodes < 2 {
				return nil, fmt.Errorf("rewire: %s: bad nodes=%q", u.Scheme, s)
			}
		}
		if s := q.Get("edges"); s != "" {
			var err error
			if edges, err = strconv.Atoi(s); err != nil || edges < 1 {
				return nil, fmt.Errorf("rewire: %s: bad edges=%q", u.Scheme, s)
			}
		}
		if s := q.Get("seed"); s != "" {
			var err error
			if seed, err = strconv.ParseUint(s, 10, 64); err != nil {
				return nil, fmt.Errorf("rewire: %s: bad seed=%q", u.Scheme, s)
			}
		}
		return gen.Social(gen.SocialConfig{Nodes: nodes, TargetEdges: edges}, rng.New(seed))
	case "preset":
		name := q.Get("name")
		if name == "" {
			return nil, fmt.Errorf("rewire: %s:preset needs name=", u.Scheme)
		}
		full := false
		if s := q.Get("full"); s != "" {
			var err error
			if full, err = strconv.ParseBool(s); err != nil {
				return nil, fmt.Errorf("rewire: %s: bad full=%q", u.Scheme, s)
			}
		}
		return PresetGraph(name, full)
	default:
		return nil, fmt.Errorf("rewire: %s: unknown graph spec %q (want barbell, social, or preset)", u.Scheme, kind)
	}
}

// graphBackend serves an immutable in-memory graph through the driver
// contract. Neighbor lists are zero-copy CSR views — safe to hand out
// because the graph is immutable and lives as long as the backend, and the
// Provider clones before anything caller-mutable escapes.
type graphBackend struct{ g *Graph }

func (b graphBackend) Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]NodeID, len(ids))
	for i, v := range ids {
		if v < 0 || int(v) >= b.g.NumNodes() {
			return nil, fmt.Errorf("%w: id %d", ErrNoSuchUser, v)
		}
		out[i] = b.g.Neighbors(v)
	}
	return out, nil
}

func (b graphBackend) NumUsers() int { return b.g.NumNodes() }

func openMem(ctx context.Context, u *url.URL) (Backend, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := parseGraphSpec(u)
	if err != nil {
		return nil, err
	}
	return graphBackend{g: g}, nil
}

// simBackend serves a simulated restrictive provider (osn.Service) through
// the driver contract and forwards its simulation telemetry, so a Provider
// over it reports TotalQueries/SimulatedElapsed/RateLimitWaits exactly like
// the Simulate compatibility constructor.
type simBackend struct{ svc *osn.Service }

func (b *simBackend) Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	resps, err := b.svc.Fetch(ctx, ids)
	if err != nil {
		return nil, err
	}
	out := make([][]NodeID, len(resps))
	for i, r := range resps {
		out[i] = r.Neighbors
	}
	return out, nil
}

func (b *simBackend) NumUsers() int { return b.svc.NumUsers() }

// parseLimits resolves the sim: quota parameters: limits= names a preset
// (facebook, twitter, none — default none), and qpw, window, latency, real
// override individual fields.
func parseLimits(u *url.URL) (Limits, error) {
	q := u.Query()
	var lim Limits
	switch name := q.Get("limits"); name {
	case "", "none":
	case "facebook":
		lim = FacebookLimits()
	case "twitter":
		lim = TwitterLimits()
	default:
		return lim, fmt.Errorf("rewire: sim: unknown limits preset %q", name)
	}
	if s := q.Get("qpw"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return lim, fmt.Errorf("rewire: sim: bad qpw=%q", s)
		}
		lim.QueriesPerWindow = n
	}
	for _, f := range []struct {
		key string
		dst *time.Duration
	}{
		{"window", &lim.Window},
		{"latency", &lim.PerQueryLatency},
		{"real", &lim.RealLatency},
	} {
		if s := q.Get(f.key); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d < 0 {
				return lim, fmt.Errorf("rewire: sim: bad %s=%q", f.key, s)
			}
			*f.dst = d
		}
	}
	return lim, nil
}

func openSim(ctx context.Context, u *url.URL) (Backend, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := parseGraphSpec(u)
	if err != nil {
		return nil, err
	}
	lim, err := parseLimits(u)
	if err != nil {
		return nil, err
	}
	return &simBackend{svc: osn.NewService(g, nil, osn.Config(lim))}, nil
}

// httpDriverParams are the query keys the http driver consumes; everything
// else stays on the base URL and reaches the provider.
var httpDriverParams = []string{"timeout", "retries", "backoff", "max_backoff", "batch", "batchwait"}

// httpBackend adds the public RateLimited capability over the HTTP driver's
// own feedback type.
type httpBackend struct{ *httpsrc.Backend }

func (h httpBackend) RateLimit() (RateLimitInfo, bool) {
	st, ok := h.Backend.RateLimit()
	return RateLimitInfo{Limit: st.Limit, Remaining: st.Remaining, Reset: st.Reset}, ok
}

func openHTTP(ctx context.Context, u *url.URL) (Backend, error) {
	q := u.Query()
	opt := httpsrc.Options{}
	var err error
	if s := q.Get("timeout"); s != "" {
		if opt.RequestTimeout, err = time.ParseDuration(s); err != nil {
			return nil, fmt.Errorf("rewire: http: bad timeout=%q", s)
		}
	}
	if s := q.Get("retries"); s != "" {
		if opt.MaxAttempts, err = strconv.Atoi(s); err != nil || opt.MaxAttempts < 1 {
			return nil, fmt.Errorf("rewire: http: bad retries=%q", s)
		}
	}
	if s := q.Get("backoff"); s != "" {
		if opt.BaseBackoff, err = time.ParseDuration(s); err != nil {
			return nil, fmt.Errorf("rewire: http: bad backoff=%q", s)
		}
	}
	if s := q.Get("max_backoff"); s != "" {
		if opt.MaxBackoff, err = time.ParseDuration(s); err != nil {
			return nil, fmt.Errorf("rewire: http: bad max_backoff=%q", s)
		}
	}
	if s := q.Get("batch"); s != "" {
		if opt.BatchSize, err = strconv.Atoi(s); err != nil || opt.BatchSize < 1 {
			return nil, fmt.Errorf("rewire: http: bad batch=%q", s)
		}
	}
	var batchWait time.Duration
	if s := q.Get("batchwait"); s != "" {
		if batchWait, err = time.ParseDuration(s); err != nil || batchWait < 0 {
			return nil, fmt.Errorf("rewire: http: bad batchwait=%q", s)
		}
	}
	base := *u
	for _, k := range httpDriverParams {
		q.Del(k)
	}
	base.RawQuery = q.Encode()
	opt.BaseURL = base.String()
	hb, err := httpsrc.New(opt)
	if err != nil {
		return nil, err
	}
	// Eager connectivity + metadata probe under the caller's ctx: an
	// unreachable or non-protocol endpoint fails at Open, and the published
	// user count is cached before the first walk asks for it.
	if _, err := hb.Meta(ctx); err != nil {
		return nil, fmt.Errorf("rewire: http: probing %s: %w", opt.BaseURL, err)
	}
	var be Backend = httpBackend{hb}
	if batchWait > 0 {
		// batchwait opts into demand coalescing at the driver level: distinct
		// walkers' misses share POST round-trips without any SDK-side wiring.
		be = WithBatching(be, BatchingOptions{MaxBatch: opt.BatchSize, MaxWait: batchWait})
	}
	return be, nil
}

// snapshotBackend serves a read-only CSR snapshot through the driver
// contract. Rows are cloned on fetch: cached neighbor lists must survive
// Close unmapping the file.
type snapshotBackend struct {
	snap  *graph.Snapshot
	extra func() error // additional closer (the readerat-mode file handle)
}

func (b *snapshotBackend) Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]NodeID, len(ids))
	for i, v := range ids {
		if v < 0 || int(v) >= b.snap.NumNodes() {
			return nil, fmt.Errorf("%w: id %d", ErrNoSuchUser, v)
		}
		nbrs, err := b.snap.Neighbors(v)
		if err != nil {
			return nil, err
		}
		out[i] = slices.Clone(nbrs)
	}
	return out, nil
}

func (b *snapshotBackend) NumUsers() int { return b.snap.NumNodes() }

func (b *snapshotBackend) Close() error {
	err := b.snap.Close()
	if b.extra != nil {
		if e := b.extra(); err == nil {
			err = e
		}
		b.extra = nil
	}
	return err
}

func openSnapshot(ctx context.Context, u *url.URL) (Backend, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	path := u.Opaque
	if path == "" {
		path = u.Path
	}
	if path == "" {
		return nil, fmt.Errorf("rewire: snapshot: empty path in %q", u.String())
	}
	if u.Query().Get("mode") == "readerat" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		snap, err := graph.OpenSnapshotReaderAt(f, st.Size())
		if err != nil {
			f.Close()
			return nil, err
		}
		return &snapshotBackend{snap: snap, extra: f.Close}, nil
	}
	snap, err := graph.OpenSnapshot(path)
	if err != nil {
		return nil, err
	}
	return &snapshotBackend{snap: snap}, nil
}
