package rewire

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sync"
	"time"
)

// BatchingOptions tunes WithBatching. The zero value of every field selects
// its default.
type BatchingOptions struct {
	// MaxBatch caps the ids one dispatched backend Fetch carries; a full
	// window flushes immediately (default 64).
	MaxBatch int
	// MaxWait bounds how long a demanded id sits in the coalescing window
	// while other dispatches are in flight: when the window cannot flush
	// immediately, a timer flushes whatever has accumulated after MaxWait
	// (default 2ms). An id arriving at an idle dispatcher never waits at all.
	MaxWait time.Duration
	// MaxInflight caps concurrently dispatched backend Fetches — the bounded
	// parallelism an oversized caller batch is chunked across (default 4).
	MaxInflight int
}

func (o *BatchingOptions) withDefaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4
	}
}

// PartialFetcher is the optional Backend capability of resolving a batch
// id-by-id: lists[i] is valid where errs[i] is nil, and a per-id failure
// (ErrNoSuchUser, typically) leaves its co-batched ids untouched. The batch
// error is non-nil only when the round-trip as a whole failed, in which case
// lists and errs are meaningless. The HTTP driver implements it over
// POST /neighbors/batch; the coalescing dispatcher probes for it so one
// walker demanding an unknown id never fails the strangers batched alongside.
type PartialFetcher interface {
	FetchPartial(ctx context.Context, ids []NodeID) ([][]NodeID, []error, error)
}

// BatchStats counts a WithBatching dispatcher's activity. Flush counters
// attribute each dispatched batch to the rule that released it: a full
// window, an idle dispatcher (no wait at all), the MaxWait timer, or the
// drain when a previous dispatch completed.
type BatchStats struct {
	// Batches and IDs count dispatched backend Fetches and the ids they
	// carried (IDs/Batches is the achieved coalescing factor).
	Batches, IDs int64
	// FlushFull, FlushIdle, FlushTimer, FlushDrain split Batches by flush
	// rule.
	FlushFull, FlushIdle, FlushTimer, FlushDrain int64
	// Withdrawn counts ids whose demander cancelled before its result
	// arrived — removed from the window, or struck from an in-flight batch
	// (the wire request itself is cancelled once every id on it withdraws).
	Withdrawn int64
}

// BatchStatser is the optional Backend capability of reporting batch-dispatch
// statistics; WithBatching's backend implements it.
type BatchStatser interface {
	BatchStats() BatchStats
}

// BackendAs resolves capability T anywhere on b's Unwrap chain, outermost
// first — the public face of the probing Open and BackendSource do
// internally. Use it to reach a wrapped backend's extras (a WithMetrics
// Metrics method, a WithBatching BatchStatser, a driver-specific statistics
// interface) without caring how the middleware is stacked.
func BackendAs[T any](b Backend) (T, bool) {
	return backendAs[T](b)
}

// WithBatching wraps b with a demand-coalescing dispatcher: concurrent
// Fetches — distinct walkers missing their cache, prefetch workers, batch
// queries — accumulate into a bounded window and go to b as one multi-id
// Fetch, fanning the results back to each waiter. For a request-metered
// provider this turns k simultaneous misses into one round-trip.
//
// Flush policy: a window holding MaxBatch ids flushes immediately; an id
// arriving at an idle dispatcher (nothing in flight) dispatches at once, so
// a lone walker pays zero added latency; otherwise ids wait — at most
// MaxWait, and usually less, because completing a dispatch drains whatever
// accumulated behind it (the fleet self-clocks into pipelined batches).
// Oversized caller batches are chunked into MaxBatch dispatches run with at
// most MaxInflight in flight.
//
// Semantics are exactly Backend's: per-caller results in input order, batch
// error on any per-id failure, provable trajectory- and billing-neutrality
// (the provider's cache, singleflight, and ledger sit above this layer and
// never see coalescing). Cancelling a caller's ctx withdraws its ids: from
// the window when undispatched, and from the in-flight batch's waiter count
// otherwise — the wire request is cancelled once every id on it withdraws.
// If b implements PartialFetcher, per-id errors strike only their own
// waiters; otherwise a batch that fails with ErrNoSuchUser is re-resolved
// id-by-id so co-batched strangers still get answers.
//
// The dispatcher holds no goroutines while idle and needs no Close of its
// own; Close on the returned backend's chain reaches b as usual.
func WithBatching(b Backend, o BatchingOptions) Backend {
	o.withDefaults()
	return &batchingBackend{inner: b, fetch: partialFetchFunc(b), opt: o}
}

// partialFetchFunc resolves the per-id fetch the dispatcher uses: b's own
// PartialFetcher capability when it has one, else a fallback that keeps
// Fetch's batch-wide contract but isolates ErrNoSuchUser failures with
// single-id re-fetches so one unknown id cannot poison a coalesced batch.
func partialFetchFunc(b Backend) func(context.Context, []NodeID) ([][]NodeID, []error, error) {
	if pf, ok := backendAs[PartialFetcher](b); ok {
		return pf.FetchPartial
	}
	return func(ctx context.Context, ids []NodeID) ([][]NodeID, []error, error) {
		lists, err := b.Fetch(ctx, ids)
		if err == nil {
			return lists, nil, nil
		}
		if len(ids) == 1 || !errors.Is(err, ErrNoSuchUser) {
			return nil, nil, err
		}
		lists = make([][]NodeID, len(ids))
		errs := make([]error, len(ids))
		for i, v := range ids {
			l, e := b.Fetch(ctx, []NodeID{v})
			switch {
			case e == nil && len(l) == 1:
				lists[i] = l[0]
			case e == nil:
				return nil, nil, fmt.Errorf("rewire: backend returned %d lists for 1 id", len(l))
			case errors.Is(e, ErrNoSuchUser):
				errs[i] = e
			default:
				return nil, nil, e
			}
		}
		return lists, errs, nil
	}
}

// batchSlot is one demanded id's place in the dispatcher: filled in by the
// batch goroutine, published by closing done. b is set (under the
// dispatcher's mu) when the slot leaves the window for a dispatched batch.
type batchSlot struct {
	id   NodeID
	base context.Context // detached demander ctx; parents the batch ctx
	done chan struct{}
	list []NodeID
	err  error
	b    *dispatchedBatch
}

// dispatchedBatch tracks one in-flight backend Fetch's live waiters. All
// fields are guarded by the dispatcher's mu except the final cancel call.
type dispatchedBatch struct {
	live   int // slots not withdrawn
	cancel context.CancelFunc
	dead   bool // live hit 0 before cancel was installed
}

// flush reasons, indexing into stats.
const (
	flushFull = iota
	flushIdle
	flushTimer
	flushDrain
)

type batchingBackend struct {
	inner Backend
	fetch func(context.Context, []NodeID) ([][]NodeID, []error, error)
	opt   BatchingOptions

	mu       sync.Mutex
	pending  []*batchSlot
	inflight int
	timerOn  bool
	timerGen int
	stats    BatchStats
}

func (c *batchingBackend) Unwrap() Backend { return c.inner }

// BatchStats returns the dispatch counters so far.
func (c *batchingBackend) BatchStats() BatchStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *batchingBackend) Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return [][]NodeID{}, nil
	}
	// The batch ctx must outlive any single demander (other waiters may share
	// the dispatch) but keep the demander's values — tenant attribution,
	// traces — so each slot carries a detached parent.
	base := context.WithoutCancel(ctx)
	slots := make([]*batchSlot, len(ids))
	c.mu.Lock()
	for i, v := range ids {
		s := &batchSlot{id: v, base: base, done: make(chan struct{})}
		slots[i] = s
		c.pending = append(c.pending, s)
	}
	batches := c.takeLocked(false, flushIdle)
	c.armTimerLocked()
	c.mu.Unlock()
	c.launch(batches)

	out := make([][]NodeID, len(ids))
	for i, s := range slots {
		select {
		case <-s.done:
			if s.err != nil {
				c.withdraw(slots[i+1:])
				return nil, s.err
			}
			out[i] = s.list
		case <-ctx.Done():
			c.withdraw(slots[i:])
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// takeLocked carves dispatchable batches off the window under the flush
// policy: a MaxBatch-full prefix always goes; a partial window goes when the
// dispatcher is idle, or when force is set (the MaxWait timer and the
// completion drain). MaxInflight bounds how much leaves. Callers hold c.mu
// and pass the result to launch after unlocking.
func (c *batchingBackend) takeLocked(force bool, reason int) []*launchBatch {
	var out []*launchBatch
	for len(c.pending) > 0 && c.inflight < c.opt.MaxInflight {
		why := reason
		if len(c.pending) < c.opt.MaxBatch {
			if c.inflight > 0 || len(out) > 0 {
				if !force {
					break
				}
			}
		} else {
			why = flushFull
		}
		n := min(len(c.pending), c.opt.MaxBatch)
		slots := slices.Clone(c.pending[:n])
		c.pending = slices.Delete(c.pending, 0, n)
		db := &dispatchedBatch{live: n}
		for _, s := range slots {
			s.b = db
		}
		c.inflight++
		c.stats.Batches++
		c.stats.IDs += int64(n)
		switch why {
		case flushFull:
			c.stats.FlushFull++
		case flushIdle:
			c.stats.FlushIdle++
		case flushTimer:
			c.stats.FlushTimer++
		case flushDrain:
			c.stats.FlushDrain++
		}
		out = append(out, &launchBatch{slots: slots, db: db})
	}
	if len(c.pending) == 0 && c.timerOn {
		// Nothing left for the armed timer to flush; retire it.
		c.timerGen++
		c.timerOn = false
	}
	return out
}

// armTimerLocked schedules a MaxWait flush for the window's residue. Callers
// hold c.mu.
func (c *batchingBackend) armTimerLocked() {
	if c.timerOn || len(c.pending) == 0 {
		return
	}
	c.timerOn = true
	gen := c.timerGen
	time.AfterFunc(c.opt.MaxWait, func() { c.timerFire(gen) })
}

// timerFire is the MaxWait flush: dispatch whatever accumulated, even while
// other batches are in flight.
func (c *batchingBackend) timerFire(gen int) {
	c.mu.Lock()
	if gen != c.timerGen {
		c.mu.Unlock()
		return
	}
	c.timerGen++
	c.timerOn = false
	batches := c.takeLocked(true, flushTimer)
	c.armTimerLocked() // MaxInflight may have stranded a residue
	c.mu.Unlock()
	c.launch(batches)
}

type launchBatch struct {
	slots []*batchSlot
	db    *dispatchedBatch
}

// launch starts one goroutine per taken batch. Runs outside c.mu: deriving
// the cancellable batch ctx is a context call, and nothing here needs the
// window state.
func (c *batchingBackend) launch(batches []*launchBatch) {
	for _, lb := range batches {
		bctx, cancel := context.WithCancel(lb.slots[0].base)
		c.mu.Lock()
		lb.db.cancel = cancel
		dead := lb.db.dead
		c.mu.Unlock()
		if dead {
			// Every waiter withdrew between take and launch: skip the wire.
			cancel()
			c.finish()
			continue
		}
		go c.run(bctx, cancel, lb)
	}
}

// run performs one dispatched backend fetch and fans results out. It owns
// the slots' result fields until it closes their done channels.
func (c *batchingBackend) run(ctx context.Context, cancel context.CancelFunc, lb *launchBatch) {
	ids := make([]NodeID, len(lb.slots))
	for i, s := range lb.slots {
		ids[i] = s.id
	}
	lists, errs, err := c.fetch(ctx, ids)
	if err == nil && len(lists) != len(ids) {
		err = fmt.Errorf("rewire: backend returned %d lists for %d ids", len(lists), len(ids))
	}
	for i, s := range lb.slots {
		switch {
		case err != nil:
			s.err = err
		case errs != nil && errs[i] != nil:
			s.err = errs[i]
		default:
			s.list = lists[i]
		}
	}
	for _, s := range lb.slots {
		close(s.done)
	}
	cancel()
	c.finish()
}

// finish releases a dispatch slot and drains the window behind it — the
// self-clocking flush that pipelines a busy fleet without timer waits.
func (c *batchingBackend) finish() {
	c.mu.Lock()
	c.inflight--
	batches := c.takeLocked(true, flushDrain)
	c.armTimerLocked()
	c.mu.Unlock()
	c.launch(batches)
}

// withdraw removes a cancelled caller's unresolved slots: pending ones leave
// the window; dispatched ones decrement their batch's live count, and the
// last withdrawal cancels the wire request itself. A slot that resolved
// concurrently is past caring — the extra decrement only ever cancels a
// batch whose run has already returned.
func (c *batchingBackend) withdraw(slots []*batchSlot) {
	if len(slots) == 0 {
		return
	}
	var cancels []context.CancelFunc
	c.mu.Lock()
	for _, s := range slots {
		c.stats.Withdrawn++
		if s.b == nil {
			if i := slices.Index(c.pending, s); i >= 0 {
				c.pending = slices.Delete(c.pending, i, i+1)
			}
			continue
		}
		s.b.live--
		if s.b.live == 0 {
			if s.b.cancel != nil {
				cancels = append(cancels, s.b.cancel)
			} else {
				s.b.dead = true
			}
		}
	}
	if len(c.pending) == 0 && c.timerOn {
		c.timerGen++
		c.timerOn = false
	}
	c.mu.Unlock()
	for _, f := range cancels {
		f()
	}
}

// batchSizeBucket indexes the power-of-two histogram in BackendMetrics:
// bucket i holds batches of (2^(i-1), 2^i] ids, the last bucket everything
// larger.
func batchSizeBucket(n int) int {
	if n < 1 {
		return 0
	}
	return min(len(MetricsSnapshot{}.BatchSizeBuckets)-1, bits.Len(uint(n-1)))
}
