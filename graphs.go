package rewire

import (
	"fmt"
	"io"
	"os"

	"rewire/internal/dataset"
	"rewire/internal/gen"
	"rewire/internal/graph"
	"rewire/internal/rng"
	"rewire/internal/spectral"
	"rewire/internal/stats"
)

// NodeID identifies a user. IDs are dense: a network with N users has IDs
// 0..N-1, matching how the paper's restrictive interface exposes them.
type NodeID = graph.NodeID

// Graph is an immutable in-memory social graph with sorted adjacency — the
// local-snapshot backend (and the substrate behind every simulated
// provider).
type Graph = graph.Graph

// NewGraph builds a graph over n nodes from an undirected edge list.
// Duplicate edges and self-loops are dropped; an endpoint outside [0, n)
// is reported as an error.
func NewGraph(n int, edges [][2]NodeID) (*Graph, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= n || int(e[1]) >= n {
			return nil, fmt.Errorf("rewire: edge (%d, %d) out of range [0, %d)", e[0], e[1], n)
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build(), nil
}

// ReadEdgeList parses a SNAP-style text edge list ('#' comments, "u v" or
// "u\tv" lines); the node count is max ID + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return graph.ReadEdgeList(r, 0)
}

// ReadEdgeListFile reads an edge-list file from disk.
func ReadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f, 0)
}

// Barbell returns the paper's Fig 1 running example at clique size k: two
// k-cliques joined by one bridge edge — the canonical terrible-conductance
// topology the MTO-Sampler repairs.
func Barbell(k int) *Graph { return gen.Barbell(k) }

// SocialGraph generates a synthetic social network with roughly the given
// node and edge counts: community-structured, heavy-tailed, connected — the
// generator behind the preset datasets.
func SocialGraph(nodes, edges int, seed uint64) (*Graph, error) {
	return gen.Social(gen.SocialConfig{Nodes: nodes, TargetEdges: edges}, rng.New(seed))
}

// PresetGraph returns one of the paper's Table I stand-in datasets by name:
// "Epinions", "Slashdot A", "Slashdot B", or "Google Plus". full selects
// paper scale; false selects the fast reduced-scale variants the tests use.
// Generation is deterministic and cached process-wide.
func PresetGraph(name string, full bool) (*Graph, error) {
	if name == "Google Plus" {
		return dataset.GooglePlus(full), nil
	}
	ds := dataset.ByName(name, full)
	if ds == nil {
		return nil, fmt.Errorf("rewire: unknown preset dataset %q", name)
	}
	return ds.Graph, nil
}

// Conductance returns the exact conductance Φ(G) of the graph (its hardest
// bottleneck cut), the quantity the paper's rewiring provably never
// decreases.
func Conductance(g *Graph) (float64, error) {
	phi, _, err := spectral.ExactConductance(g)
	return phi, err
}

// MixingTime returns the SLEM-based mixing time of the graph's lazy random
// walk — the paper's measure of how many steps a walk needs before samples
// are usable.
func MixingTime(g *Graph) (float64, error) {
	return spectral.GraphMixingTime(g)
}

// RelativeError returns |estimate - truth| / |truth|, the paper's error
// metric (0 when both are 0; +Inf when only the truth is).
func RelativeError(estimate, truth float64) float64 {
	return stats.RelativeError(estimate, truth)
}
