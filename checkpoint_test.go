package rewire_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"rewire"
)

// runInterrupted streams from s until at least pauseAfter samples arrived,
// then pauses and drains; it returns everything delivered (possibly a few
// samples more than pauseAfter — the walkers finish their in-flight steps)
// and asserts the run ended with ErrPaused.
func runInterrupted(t *testing.T, s *rewire.Session, total, pauseAfter int) []rewire.Sample {
	t.Helper()
	var got []rewire.Sample
	var finalErr error
	for smp, err := range s.Stream(context.Background(), total) {
		if err != nil {
			finalErr = err
			break
		}
		got = append(got, smp)
		if len(got) == pauseAfter {
			s.Pause()
		}
	}
	if !errors.Is(finalErr, rewire.ErrPaused) {
		t.Fatalf("interrupted run ended with %v, want ErrPaused", finalErr)
	}
	if !errors.Is(s.Err(), rewire.ErrPaused) {
		t.Fatalf("Err() after pause = %v, want ErrPaused", s.Err())
	}
	if len(got) >= total {
		t.Fatalf("pause delivered the whole budget (%d samples): nothing left to resume", len(got))
	}
	return got
}

// TestCheckpointResumeByteIdentical is the satellite's acceptance bar: for
// every algorithm, pausing mid-run, checkpointing, and resuming in a fresh
// session yields exactly the trajectory — node for node, weight for weight —
// that the uninterrupted run produces. Single-walker sessions, because a
// racing fleet's merged arrival order is nondeterministic by design.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	algs := []rewire.Algorithm{rewire.AlgMTO, rewire.AlgSRW, rewire.AlgMHRW, rewire.AlgRJ}
	const total, pauseAfter = 400, 150
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			g := rewire.Barbell(12)
			opts := []rewire.Option{rewire.WithAlgorithm(alg), rewire.WithSeed(7)}

			ref, err := rewire.NewSession(rewire.GraphSource(g), opts...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Samples(context.Background(), total)
			if err != nil {
				t.Fatal(err)
			}

			s1, err := rewire.NewSession(rewire.GraphSource(g), opts...)
			if err != nil {
				t.Fatal(err)
			}
			got := runInterrupted(t, s1, total, pauseAfter)

			data, err := s1.Checkpoint(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			s2, err := rewire.Resume(context.Background(), data, rewire.WithSource(rewire.GraphSource(g)))
			if err != nil {
				t.Fatal(err)
			}
			if r1, a1 := s1.Rewired(); true {
				if r2, a2 := s2.Rewired(); r1 != r2 || a1 != a2 {
					t.Fatalf("resumed overlay delta (%d,%d) != paused (%d,%d)", r2, a2, r1, a1)
				}
			}
			rest, err := s2.Samples(context.Background(), total-len(got))
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, rest...)

			if len(got) != len(want) {
				t.Fatalf("interrupted+resumed drew %d samples, uninterrupted %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s trajectory diverges at sample %d: got %+v, want %+v (pause at %d)",
						alg, i, got[i], want[i], pauseAfter)
				}
			}
		})
	}
}

// TestCheckpointBytesDeterministic: the same paused session checkpoints to
// the same bytes, and a resumed-but-not-yet-run session re-checkpoints to
// those bytes too — the envelope is state, not history.
func TestCheckpointBytesDeterministic(t *testing.T) {
	g := rewire.Barbell(10)
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Samples(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	a, err := s.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two checkpoints of the same paused session differ")
	}
	r, err := rewire.Resume(context.Background(), a, rewire.WithSource(rewire.GraphSource(g)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("resume round-trip changed the checkpoint bytes")
	}
}

func checkpointedSession(t *testing.T) (data []byte, g *rewire.Graph) {
	t.Helper()
	g = rewire.Barbell(8)
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Samples(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	data, err = s.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return data, g
}

func TestResumeRejectsVersionSkew(t *testing.T) {
	data, g := checkpointedSession(t)
	var env map[string]any
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env["rewire_checkpoint"] = 99
	skewed, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rewire.Resume(context.Background(), skewed, rewire.WithSource(rewire.GraphSource(g))); !errors.Is(err, rewire.ErrCheckpointVersion) {
		t.Fatalf("version 99 resumed with err = %v, want ErrCheckpointVersion", err)
	}
	// A JSON document that is not a checkpoint at all has version 0.
	if _, err := rewire.Resume(context.Background(), []byte(`{}`), rewire.WithSource(rewire.GraphSource(g))); !errors.Is(err, rewire.ErrCheckpointVersion) {
		t.Fatalf("non-checkpoint JSON resumed with err = %v, want ErrCheckpointVersion", err)
	}
	if _, err := rewire.Resume(context.Background(), []byte(`not json`), rewire.WithSource(rewire.GraphSource(g))); err == nil {
		t.Fatal("malformed bytes resumed")
	}
}

func TestResumeGuardsChainDefiningOptions(t *testing.T) {
	data, g := checkpointedSession(t)
	src := rewire.WithSource(rewire.GraphSource(g))
	cases := []struct {
		name string
		opts []rewire.Option
		want string
	}{
		{"no source", nil, "WithSource"},
		{"change algorithm", []rewire.Option{src, rewire.WithAlgorithm(rewire.AlgSRW)}, "algorithm"},
		{"change fleet", []rewire.Option{src, rewire.WithFleet(4)}, "fleet"},
		{"change starts", []rewire.Option{src, rewire.WithStarts(0, 1)}, "fleet"},
		{"reseed", []rewire.Option{src, rewire.WithSeed(99)}, "reseed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := rewire.Resume(context.Background(), data, tc.opts...)
			if err == nil {
				t.Fatal("Resume accepted a chain-changing option")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	// Operational options stay allowed.
	if _, err := rewire.Resume(context.Background(), data, src, rewire.WithStoreShards(4)); err != nil {
		t.Fatalf("operational option rejected: %v", err)
	}
}

func TestCheckpointDuringRunIsRefused(t *testing.T) {
	g := rewire.Barbell(8)
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithAlgorithm(rewire.AlgSRW))
	if err != nil {
		t.Fatal(err)
	}
	checked := false
	for range s.Nodes(context.Background(), 20) {
		if !checked {
			checked = true
			if _, err := s.Checkpoint(context.Background()); !errors.Is(err, rewire.ErrActiveStream) {
				t.Fatalf("Checkpoint mid-run = %v, want ErrActiveStream", err)
			}
		}
	}
	if !checked {
		t.Fatal("stream yielded nothing")
	}
}

// TestPauseLeavesSessionReusable: ErrPaused is a clean stop — the same
// session streams again without a checkpoint round-trip, and the pause
// request does not leak into the next run.
func TestPauseLeavesSessionReusable(t *testing.T) {
	g := rewire.Barbell(8)
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	_ = runInterrupted(t, s, 200, 40)
	after, err := s.Samples(context.Background(), 50)
	if err != nil {
		t.Fatalf("post-pause run failed: %v", err)
	}
	if len(after) != 50 {
		t.Fatalf("post-pause run drew %d samples, want 50", len(after))
	}
	if s.Err() != nil {
		t.Fatalf("clean post-pause run left Err = %v", s.Err())
	}
}

// TestPauseWithNewSessionEquivalence: pausing and continuing IN PLACE (no
// serialization) must equal the uninterrupted run too — the cheaper of the
// two resume paths a service uses.
func TestPauseInPlaceContinuationByteIdentical(t *testing.T) {
	g := rewire.Barbell(12)
	ref, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithAlgorithm(rewire.AlgMHRW), rewire.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Samples(context.Background(), 300)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rewire.NewSession(rewire.GraphSource(g), rewire.WithAlgorithm(rewire.AlgMHRW), rewire.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	got := runInterrupted(t, s, 300, 100)
	rest, err := s.Samples(context.Background(), 300-len(got))
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, rest...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-place continuation diverges at sample %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestOpenBackendUnknownDriverError(t *testing.T) {
	_, err := rewire.OpenBackend(context.Background(), "nosuch:thing")
	if !errors.Is(err, rewire.ErrUnknownDriver) {
		t.Fatalf("err = %v, want ErrUnknownDriver", err)
	}
	if !errors.Is(err, rewire.ErrUnknownScheme) { // deprecated alias keeps matching
		t.Fatalf("err = %v does not match legacy ErrUnknownScheme", err)
	}
	var ude *rewire.UnknownDriverError
	if !errors.As(err, &ude) {
		t.Fatalf("err %T is not *UnknownDriverError", err)
	}
	if ude.Scheme != "nosuch" || ude.URL != "nosuch:thing" || len(ude.Drivers) == 0 {
		t.Fatalf("UnknownDriverError fields = %+v", ude)
	}
	for i := 1; i < len(ude.Drivers); i++ {
		if ude.Drivers[i-1] >= ude.Drivers[i] {
			t.Fatalf("driver list not sorted: %v", ude.Drivers)
		}
	}
	if _, err := rewire.OpenBackend(context.Background(), "noscheme"); !errors.Is(err, rewire.ErrUnknownDriver) {
		t.Fatalf("scheme-less URL err = %v, want ErrUnknownDriver", err)
	}
}
