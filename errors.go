package rewire

import (
	"errors"
	"fmt"

	"rewire/internal/osn"
)

// Sentinel errors of the public SDK. Match them with errors.Is: sampling
// paths wrap them with situational detail.
var (
	// ErrBudgetExhausted reports that the session's demand-query budget
	// (Provider.SetBudget) is spent. The session remains valid: raise the
	// budget and stream again — the cache, the overlay, and every walker
	// position survive, so sampling resumes exactly where it stopped.
	ErrBudgetExhausted = osn.ErrBudgetExhausted

	// ErrNoSuchUser reports a query outside the backend's user-ID space.
	ErrNoSuchUser = osn.ErrNoSuchUser

	// ErrDisconnected reports that a walker is positioned on a node with no
	// neighbors, so its chain cannot make progress. Start the session from a
	// connected node (WithStarts) to avoid it.
	ErrDisconnected = errors.New("rewire: walker start has no neighbors")

	// ErrActiveStream reports an attempt to start a stream or estimate on a
	// session whose previous run has not finished. Sessions serialize runs;
	// walkers are single-goroutine state.
	ErrActiveStream = errors.New("rewire: session already has an active run")

	// ErrNoOverlay reports an overlay operation on a session whose algorithm
	// does not rewire (anything but AlgMTO).
	ErrNoOverlay = errors.New("rewire: session has no rewired overlay")

	// ErrUnknownDriver reports an Open URL whose scheme has no registered
	// driver. The concrete error is an *UnknownDriverError carrying the
	// scheme, the offending URL, and the registered scheme list; match the
	// class with errors.Is(err, ErrUnknownDriver) and recover the details
	// with errors.As.
	ErrUnknownDriver = errors.New("rewire: no driver registered for scheme")

	// ErrPaused reports a run that stopped because Session.Pause asked it to:
	// the walkers quiesced at a step boundary and the session is ready to be
	// checkpointed (Session.Checkpoint) or streamed again. It is a clean,
	// expected stop — callers that treat it as a failure are mistaken.
	ErrPaused = errors.New("rewire: session paused")

	// ErrCheckpointVersion reports Resume bytes whose envelope version this
	// build does not speak — produced by an incompatible (usually newer)
	// rewire, or not a rewire checkpoint at all.
	ErrCheckpointVersion = errors.New("rewire: unsupported checkpoint version")
)

// ErrUnknownScheme is the historical name of ErrUnknownDriver, kept so
// existing errors.Is checks keep matching.
//
// Deprecated: use ErrUnknownDriver.
var ErrUnknownScheme = ErrUnknownDriver

// UnknownDriverError is the concrete error Open and OpenBackend return for a
// URL whose scheme resolves to no registered driver. It wraps
// ErrUnknownDriver (and therefore also matches the deprecated
// ErrUnknownScheme), and carries enough context to render an actionable
// message: which scheme failed, in which URL, and which schemes would have
// worked.
type UnknownDriverError struct {
	// Scheme is the unresolvable scheme ("" when the URL had none at all).
	Scheme string
	// URL is the raw URL passed to Open.
	URL string
	// Drivers lists the registered schemes, sorted — the valid alternatives.
	Drivers []string
}

// Error implements error.
func (e *UnknownDriverError) Error() string {
	if e.Scheme == "" {
		return fmt.Sprintf("%v: %q has no scheme (registered: %v)", ErrUnknownDriver, e.URL, e.Drivers)
	}
	return fmt.Sprintf("%v: %q in %q (registered: %v)", ErrUnknownDriver, e.Scheme, e.URL, e.Drivers)
}

// Unwrap makes errors.Is(err, ErrUnknownDriver) match.
func (e *UnknownDriverError) Unwrap() error { return ErrUnknownDriver }
