package rewire

import (
	"errors"

	"rewire/internal/osn"
)

// Sentinel errors of the public SDK. Match them with errors.Is: sampling
// paths wrap them with situational detail.
var (
	// ErrBudgetExhausted reports that the session's demand-query budget
	// (Provider.SetBudget) is spent. The session remains valid: raise the
	// budget and stream again — the cache, the overlay, and every walker
	// position survive, so sampling resumes exactly where it stopped.
	ErrBudgetExhausted = osn.ErrBudgetExhausted

	// ErrNoSuchUser reports a query outside the backend's user-ID space.
	ErrNoSuchUser = osn.ErrNoSuchUser

	// ErrDisconnected reports that a walker is positioned on a node with no
	// neighbors, so its chain cannot make progress. Start the session from a
	// connected node (WithStarts) to avoid it.
	ErrDisconnected = errors.New("rewire: walker start has no neighbors")

	// ErrActiveStream reports an attempt to start a stream or estimate on a
	// session whose previous run has not finished. Sessions serialize runs;
	// walkers are single-goroutine state.
	ErrActiveStream = errors.New("rewire: session already has an active run")

	// ErrNoOverlay reports an overlay operation on a session whose algorithm
	// does not rewire (anything but AlgMTO).
	ErrNoOverlay = errors.New("rewire: session has no rewired overlay")

	// ErrUnknownScheme reports an Open URL whose scheme has no registered
	// driver (see Register and Drivers).
	ErrUnknownScheme = errors.New("rewire: no driver registered for scheme")
)
