package rewire

import (
	"context"
	"fmt"
	"net/url"

	"rewire/internal/durable"
)

// DurableCacheStats describes a durable cache's recovered and live state —
// entries seeded at open, WAL records replayed, snapshot generation, live
// segment count. See Provider.DurableCacheStats.
type DurableCacheStats = durable.Stats

// WithDurableCache persists the session provider's demand-billed cache in a
// write-ahead-logged directory: every committed fetch is journaled before it
// is served, a background compactor folds sealed log segments into binary CSR
// snapshots, and reopening the directory — after a clean shutdown or a
// SIGKILL mid-crawl — warm-starts the cache and the billing ledger exactly.
// A replayed entry is a cache hit, never re-billed, so a resumed same-seed
// crawl replays its trajectory byte-identically at near-zero marginal query
// cost.
//
// The option is construction-time only and requires a Provider-backed source
// (the cache journals the provider's billing ledger; a free GraphSource has
// nothing to persist). The directory is flock'd: one process at a time. The
// cache closes with the Provider (Provider.Close).
//
// Equivalent spellings: Open(ctx, "cache:DIR?src=URL") wraps any registered
// backend scheme, and Provider.AttachDurableCache is the imperative form.
func WithDurableCache(dir string) Option {
	return func(c *config) {
		if dir == "" {
			c.fail(fmt.Errorf("rewire: WithDurableCache with empty directory"))
			return
		}
		c.cacheDir = dir
	}
}

// AttachDurableCache opens (creating if needed) the durable cache directory
// at dir, replays its recovered state — cached neighbor lists, billing
// ledger, budgets — into the provider, and journals every committed fetch
// from now on. It must run before the provider serves any query: the replay
// seeds a still-empty cache. A provider carries at most one durable cache;
// Close closes it with the provider.
func (p *Provider) AttachDurableCache(dir string) error {
	return p.attachDurable(dir, durable.Options{})
}

func (p *Provider) attachDurable(dir string, opt durable.Options) error {
	if p.durable != nil {
		return fmt.Errorf("rewire: provider already has a durable cache")
	}
	c, err := durable.Open(dir, opt)
	if err != nil {
		return err
	}
	if err := c.Attach(p.client); err != nil {
		c.Close()
		return err
	}
	p.durable = c
	return nil
}

// DurableCacheStats returns the durable cache's counters; ok is false when
// the provider has none.
func (p *Provider) DurableCacheStats() (DurableCacheStats, bool) {
	if p.durable == nil {
		return DurableCacheStats{}, false
	}
	return p.durable.Stats(), true
}

// CompactDurableCache synchronously folds every sealed WAL segment into a
// fresh snapshot generation (a no-op without a durable cache, and when there
// is nothing to fold). The background compactor does this on its own as
// segments seal; call it explicitly to bound reopen replay time before a
// planned shutdown.
func (p *Provider) CompactDurableCache() error {
	if p.durable == nil {
		return nil
	}
	return p.durable.Compact()
}

// cacheBackend is the backend the cache: driver produces: it delegates
// fetches to the inner backend untouched and carries the opened durable
// cache, which BackendSource attaches to the provider's client. The
// journaling itself happens at the client layer (where billing is decided),
// not here — the backend wrapper only ties the cache's lifetime to the
// backend chain's Close.
type cacheBackend struct {
	inner Backend
	cache *durable.Cache
}

func (b *cacheBackend) Fetch(ctx context.Context, ids []NodeID) ([][]NodeID, error) {
	return b.inner.Fetch(ctx, ids)
}

// Unwrap exposes the inner backend's capabilities (UserCounter, Hinter,
// RateLimited, ...) through the standard probe chain.
func (b *cacheBackend) Unwrap() Backend { return b.inner }

// Close seals the WAL and releases the cache's snapshot mappings and
// directory lock. closeBackend also walks to the inner backend's Closer.
func (b *cacheBackend) Close() error { return b.cache.Close() }

// openCache implements the cache: driver scheme:
//
//	cache:/var/lib/rewire/crawl?src=https://host/graph
//	cache:./cachedir?src=sim:preset%3Fname=Epinions&fsync=1
//
// The opaque part (or path) is the cache directory; the required src
// parameter is the inner backend's URL, resolved recursively through the
// driver registry (URL-encode the inner URL's own query string). fsync=1
// forces an fsync per journaled record. The resulting Provider warm-starts
// from whatever a previous process persisted in the directory.
func openCache(ctx context.Context, u *url.URL) (Backend, error) {
	dir := u.Opaque
	if dir == "" {
		dir = u.Path
	}
	if dir == "" {
		return nil, fmt.Errorf("rewire: cache: needs a directory (cache:DIR?src=URL)")
	}
	q := u.Query()
	src := q.Get("src")
	if src == "" {
		return nil, fmt.Errorf("rewire: cache: needs src= naming the inner backend URL")
	}
	var opt durable.Options
	if q.Get("fsync") == "1" || q.Get("fsync") == "true" {
		opt.Fsync = true
	}
	inner, err := OpenBackend(ctx, src)
	if err != nil {
		return nil, err
	}
	c, err := durable.Open(dir, opt)
	if err != nil {
		closeBackend(inner)
		return nil, err
	}
	return &cacheBackend{inner: inner, cache: c}, nil
}
