// Package rewire samples online social networks through their restrictive
// web interfaces — faster than a plain random walk — by rewiring a virtual
// overlay of the network on-the-fly. It is a from-scratch Go reproduction
// and productionization of "Faster Random Walks By Rewiring Online Social
// Networks On-The-Fly" (Zhou, Zhang, Gong, Das — ICDE 2013, arXiv:1211.5184).
//
// # The public surface
//
// Everything starts with a [Source] — an in-memory graph ([GraphSource]) or
// a simulated rate-limited provider ([Simulate]) — and a [Session] built
// over it with functional options:
//
//	g, _ := rewire.PresetGraph("Epinions", false)
//	osn := rewire.Simulate(g, rewire.FacebookLimits())
//	s, err := rewire.NewSession(osn,
//		rewire.WithFleet(8),
//		rewire.WithPrefetch(rewire.PrefetchOptions{Strategy: rewire.PrefetchFrontier, Depth: 2}),
//		rewire.WithSeed(42),
//	)
//
// Samples stream as standard Go iterators, with context cancellation and
// deadlines threaded through the entire query path — a deadline aborts
// in-flight provider round-trips, speculative prefetches, and every walker
// goroutine, while the unique-query ledger stays exact:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	for sample, err := range s.Stream(ctx, 10000) {
//		if err != nil {
//			break // deadline hit or budget exhausted; session is resumable
//		}
//		use(sample)
//	}
//
// Sessions are resumable: cancel a stream, come back with a fresh context
// (or a raised budget after [ErrBudgetExhausted]), and the walkers continue
// from their positions with the cache, cost ledger, and rewired overlay
// intact. [Session.Estimate] wraps the paper's full estimation protocol —
// Geweke-monitored burn-in, importance-weighted aggregates — in one call.
//
// # Under the hood
//
// The paper's contribution, the MTO-Sampler, lives in internal/core; the
// supporting substrates are one package each under internal/ (graph,
// generators, restrictive-interface simulation, walkers, spectral toolkit,
// convergence diagnostics, estimation, latent-space theory, experiment
// harness). The cmd/ binaries reproduce every table and figure of the
// paper's evaluation, and bench_test.go at this root exposes one testing.B
// benchmark per experiment plus design-choice ablations.
//
// See README.md for the full tour: the quickstart, the concurrent
// walker-fleet architecture, the speculative prefetch pipeline, and the CI
// gates (including the exported-API snapshot guarding this package).
package rewire
