// Package rewire is a from-scratch Go reproduction of "Faster Random Walks
// By Rewiring Online Social Networks On-The-Fly" (Zhou, Zhang, Gong, Das —
// ICDE 2013, arXiv:1211.5184).
//
// The paper's contribution, the MTO-Sampler, lives in internal/core; the
// supporting substrates are one package each under internal/ (graph,
// generators, restrictive-interface simulation, walkers, spectral toolkit,
// convergence diagnostics, estimation, latent-space theory, experiment
// harness). The cmd/ binaries reproduce every table and figure of the
// paper's evaluation, and bench_test.go at this root exposes one testing.B
// benchmark per experiment plus design-choice ablations.
//
// See README.md for a tour of the layout, the quickstart commands, and the
// concurrent walker-fleet architecture.
package rewire
